package ingest

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"pinsql/internal/dbsim"
)

// SlowLogSource streams a MySQL slow query log into the Source seam. It
// is a raw adapter: batches come out keyed by each statement's emission
// second (the instant the server wrote the entry), grouped only when
// consecutive entries share a second — sparse, unrebased, and possibly
// locally out of order. Wrap it in Replay to get the dense contract the
// Player needs; Open does exactly that.
//
// Entry grammar handled (one scanner pass, bounded memory):
//
//	# Time: 2023-05-12T03:14:15.123456Z        (RFC 3339, any zone, or
//	# Time: 230512  3:14:15                     the legacy compact form)
//	# User@Host: app[app] @ host [10.0.0.3]
//	# Query_time: 1.234567  Lock_time: 0.000123 Rows_sent: 10 Rows_examined: 40000
//	use orders;
//	SET timestamp=1683861255;
//	SELECT ... multi-line ... ;
//
// `SET timestamp=` carries the statement's start time and wins over
// `# Time:`; without it the start is the header time minus Query_time
// (the header stamps the entry write, i.e. completion). Malformed input —
// torn entries, an interleaved header cutting a statement short, bad
// numbers or timestamps, a truncated tail — is counted in
// Stats.ParseErrors and skipped; the parser never stops early and never
// emits invalid UTF-8 (offending bytes become U+FFFD).
//
// Records leave with TemplateID == "": template identity is assigned
// downstream by the collector registry's raw-SQL intern path, the same
// sqltemplate normalization every other input takes.
type SlowLogSource struct {
	sc  *bufio.Scanner
	err error

	// current header group
	hdrTimeMs   int64 // from "# Time:", ms since epoch; 0 = none
	setTsMs     int64 // from "SET timestamp=", ms since epoch; 0 = none
	queryTimeMs float64
	lockTimeMs  float64
	rowsExam    int64
	hdrSeen     bool // a "# Query_time:" header opened an entry
	sqlBuf      []string

	pending []dbsim.LogRecord // completed records not yet batched
	eof     bool

	stats   Stats
	fromMs  int64 // best-effort bounds: first/last emission seen
	toMs    int64
	lastSec int64 // second of the batch currently being grouped
}

// SlowLog creates a streaming parser over r (plain text; Open handles
// gzip). The returned source is sparse — wrap in Replay before playing.
func SlowLog(r io.Reader) *SlowLogSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes) // multi-megabyte statements
	return &SlowLogSource{sc: sc}
}

// Next implements Source: the next emission second's records. Batches are
// grouped per consecutive second of the input, not densified.
func (s *SlowLogSource) Next() (Batch, error) {
	for {
		// A batch is ready once a record lands in a later second than the
		// ones already pending (slow logs are written at completion, so
		// the stream is near-sorted; Replay absorbs the exceptions).
		if n := len(s.pending); n > 0 {
			first := EmissionMs(s.pending[0]) / 1000
			cut := n
			for i := 1; i < n; i++ {
				if EmissionMs(s.pending[i])/1000 != first {
					cut = i
					break
				}
			}
			if cut < n || s.eof {
				b := Batch{Second: first, Records: s.pending[:cut:cut]}
				s.pending = s.pending[cut:]
				b.Last = s.eof && len(s.pending) == 0
				return b, nil
			}
		} else if s.eof {
			if s.err != nil {
				return Batch{}, s.err
			}
			return Batch{}, io.EOF
		}
		s.scanMore()
	}
}

// scanMore consumes input lines until a record completes or input ends.
func (s *SlowLogSource) scanMore() {
	for s.sc.Scan() {
		line := strings.ToValidUTF8(s.sc.Text(), "�")
		if s.consumeLine(line) {
			return
		}
	}
	// EOF (or a read error): a half-built entry is a torn tail.
	if err := s.sc.Err(); err != nil {
		s.err = err
	}
	if s.hdrSeen || len(s.sqlBuf) > 0 {
		s.stats.ParseErrors++
		s.resetEntry()
	}
	s.eof = true
}

// consumeLine feeds one line into the entry state machine; it reports
// whether a record was completed.
func (s *SlowLogSource) consumeLine(line string) bool {
	trimmed := strings.TrimSpace(line)
	switch {
	case strings.HasPrefix(trimmed, "# Time:"):
		if s.hdrSeen || len(s.sqlBuf) > 0 {
			// A new entry interrupted an unterminated statement.
			s.stats.ParseErrors++
			s.resetEntry()
		}
		ts, err := parseSlowLogTime(strings.TrimSpace(trimmed[len("# Time:"):]))
		if err != nil {
			s.stats.ParseErrors++
			s.hdrTimeMs = 0
			return false
		}
		s.hdrTimeMs = ts
	case strings.HasPrefix(trimmed, "# Query_time:"):
		if s.hdrSeen || len(s.sqlBuf) > 0 {
			s.stats.ParseErrors++
			s.resetEntry()
		}
		if !s.parseQueryTimeHeader(trimmed) {
			s.stats.ParseErrors++
			return false
		}
		s.hdrSeen = true
	case strings.HasPrefix(trimmed, "#"):
		// User@Host and friends: metadata we don't need.
	case trimmed == "":
	case isUseLine(trimmed):
		// Schema switch; the statement text itself is what we normalize.
	case isSetTimestamp(trimmed):
		ts, ok := parseSetTimestamp(trimmed)
		if !ok {
			s.stats.ParseErrors++
			return false
		}
		s.setTsMs = ts
	case isServerBanner(trimmed, len(s.sqlBuf) > 0):
		// Restart banners interleave mid-file; they cut a pending
		// statement short.
		if s.hdrSeen || len(s.sqlBuf) > 0 {
			s.stats.ParseErrors++
			s.resetEntry()
		}
	default:
		s.sqlBuf = append(s.sqlBuf, line)
		if strings.HasSuffix(trimmed, ";") {
			return s.finishEntry()
		}
	}
	return false
}

// finishEntry turns the accumulated entry into a LogRecord; it reports
// whether one was emitted.
func (s *SlowLogSource) finishEntry() bool {
	sql := strings.TrimSpace(strings.Join(s.sqlBuf, "\n"))
	sql = strings.TrimSuffix(sql, ";")
	ok := s.hdrSeen && sql != "" && (s.setTsMs > 0 || s.hdrTimeMs > 0)
	if !ok {
		// Statement without a Query_time header (or headers without a
		// usable clock): not a slow-log entry we can place in time.
		s.stats.ParseErrors++
		s.resetEntry()
		return false
	}
	var arrivalMs int64
	if s.setTsMs > 0 {
		arrivalMs = s.setTsMs
	} else {
		arrivalMs = s.hdrTimeMs - int64(s.queryTimeMs)
	}
	rec := dbsim.LogRecord{
		SQL:          sql,
		Table:        guessTable(sql),
		Kind:         guessKind(sql),
		ArrivalMs:    arrivalMs,
		ResponseMs:   s.queryTimeMs,
		ExaminedRows: s.rowsExam,
		LockWaitMs:   s.lockTimeMs,
	}
	s.stats.Records++
	em := EmissionMs(rec)
	if s.fromMs == 0 || rec.ArrivalMs < s.fromMs {
		s.fromMs = rec.ArrivalMs
	}
	if em >= s.toMs {
		s.toMs = em + 1
	}
	s.pending = append(s.pending, rec)
	s.resetEntry()
	return true
}

func (s *SlowLogSource) resetEntry() {
	s.hdrSeen = false
	s.queryTimeMs, s.lockTimeMs, s.rowsExam = 0, 0, 0
	s.setTsMs = 0
	s.sqlBuf = s.sqlBuf[:0]
}

// parseQueryTimeHeader pulls the numeric fields out of a
// "# Query_time: ... Lock_time: ... Rows_examined: ..." line.
func (s *SlowLogSource) parseQueryTimeHeader(line string) bool {
	fields := strings.Fields(line[1:]) // drop "#"
	var qt, lt float64
	var rows int64
	seenQT := false
	for i := 0; i+1 < len(fields); i++ {
		switch fields[i] {
		case "Query_time:":
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil || v < 0 || v != v { // reject NaN and negatives
				return false
			}
			qt, seenQT = v, true
		case "Lock_time:":
			if v, err := strconv.ParseFloat(fields[i+1], 64); err == nil && v >= 0 && v == v {
				lt = v
			}
		case "Rows_examined:":
			if v, err := strconv.ParseInt(fields[i+1], 10, 64); err == nil && v >= 0 {
				rows = v
			}
		}
	}
	if !seenQT {
		return false
	}
	s.queryTimeMs = qt * 1000
	s.lockTimeMs = lt * 1000
	s.rowsExam = rows
	return true
}

// Bounds implements Source: best effort, the extent parsed so far.
func (s *SlowLogSource) Bounds() (int64, int64) { return s.fromMs, s.toMs }

// Stats implements Counting.
func (s *SlowLogSource) Stats() Stats { return s.stats }

// Close implements Source. The reader is owned by the caller (Open wraps
// sources with the file's closer).
func (s *SlowLogSource) Close() error { return nil }

// parseSlowLogTime parses the "# Time:" payload: RFC 3339 with any zone
// offset (MySQL ≥ 5.7 writes UTC or system time with offset), or the
// legacy compact "yymmdd h:mm:ss" form (naive, taken as UTC).
func parseSlowLogTime(v string) (int64, error) {
	if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return t.UnixMilli(), nil
	}
	t, err := time.Parse("060102 15:04:05", strings.Join(strings.Fields(v), " "))
	if err != nil {
		return 0, err
	}
	return t.UTC().UnixMilli(), nil
}

func isUseLine(trimmed string) bool {
	low := strings.ToLower(trimmed)
	return strings.HasPrefix(low, "use ") && strings.HasSuffix(low, ";") && !strings.ContainsAny(low, "()=")
}

func isSetTimestamp(trimmed string) bool {
	low := strings.ToLower(trimmed)
	return strings.HasPrefix(low, "set timestamp=")
}

func parseSetTimestamp(trimmed string) (int64, bool) {
	v := trimmed[len("SET timestamp="):]
	v = strings.TrimSuffix(strings.TrimSpace(v), ";")
	// Fractional epochs appear with log_timestamps=SYSTEM on 8.0.
	sec, err := strconv.ParseFloat(v, 64)
	if err != nil || sec <= 0 || sec != sec {
		return 0, false
	}
	return int64(sec * 1000), true
}

// isServerBanner spots mysqld restart banners, which interleave with
// entries. inSQL guards against eating a statement line that merely
// mentions these words.
func isServerBanner(trimmed string, inSQL bool) bool {
	if inSQL {
		return false
	}
	return strings.Contains(trimmed, ", Version: ") ||
		strings.HasPrefix(trimmed, "Tcp port:") ||
		strings.HasPrefix(trimmed, "Time ") && strings.Contains(trimmed, "Id Command")
}

// guessKind classifies a statement by its leading verb.
func guessKind(sql string) dbsim.QueryKind {
	switch strings.ToUpper(firstWord(sql)) {
	case "SELECT", "SHOW", "WITH":
		return dbsim.KindSelect
	case "INSERT", "REPLACE":
		return dbsim.KindInsert
	case "UPDATE":
		return dbsim.KindUpdate
	case "DELETE":
		return dbsim.KindDelete
	case "ALTER", "CREATE", "DROP", "TRUNCATE", "RENAME", "OPTIMIZE":
		return dbsim.KindDDL
	}
	return dbsim.KindSelect
}

// guessTable extracts the first table name after FROM/INTO/UPDATE/JOIN —
// best effort, for report grouping only.
func guessTable(sql string) string {
	fields := strings.Fields(sql)
	for i, f := range fields {
		switch strings.ToUpper(strings.Trim(f, "(")) {
		case "FROM", "INTO", "JOIN", "TABLE":
			if i+1 < len(fields) {
				return cleanTableName(fields[i+1])
			}
		case "UPDATE":
			if i == 0 && len(fields) > 1 {
				return cleanTableName(fields[1])
			}
		}
	}
	return ""
}

func cleanTableName(tok string) string {
	tok = strings.Trim(tok, "`\"'(),;")
	if i := strings.LastIndexByte(tok, '.'); i >= 0 {
		tok = tok[i+1:]
	}
	tok = strings.Trim(tok, "`\"'")
	if !utf8.ValidString(tok) || len(tok) > 64 {
		return ""
	}
	return tok
}

func firstWord(s string) string {
	s = strings.TrimSpace(s)
	for i, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '(' {
			return s[:i]
		}
	}
	return s
}
