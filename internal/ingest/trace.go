package ingest

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"pinsql/internal/dbsim"
)

// The pinsql trace format is the system's canonical interchange encoding:
// a gzip-compressed JSONL stream. The first line is a header object
//
//	{"format":"pinsql-trace","version":1,"from_ms":...,"to_ms":...}
//
// followed by one object per event, in emission order:
//
//	{"t":"r","rec":{...dbsim.LogRecord...}}   — one query-log record
//	{"t":"m","met":{...dbsim.SecondMetrics...}} — one per-second metric row
//
// Timestamps are absolute trace milliseconds; metric rows carry absolute
// seconds. The header bounds define the dense timeline, so a reader can
// reproduce empty seconds exactly — a written trace round-trips to the
// identical batch sequence without a replay clock.

const (
	traceFormat  = "pinsql-trace"
	traceVersion = 1
)

type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	FromMs  int64  `json:"from_ms"`
	ToMs    int64  `json:"to_ms"`
}

type traceLine struct {
	T   string               `json:"t"`
	Rec *dbsim.LogRecord     `json:"rec,omitempty"`
	Met *dbsim.SecondMetrics `json:"met,omitempty"`
}

// WriteTrace drains src and writes it as a gzip trace covering
// [fromMs, toMs). The source's batches are encoded in order, records
// before metric rows within each second.
func WriteTrace(w io.Writer, fromMs, toMs int64, src Source) error {
	zw := gzip.NewWriter(w)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(traceHeader{Format: traceFormat, Version: traceVersion, FromMs: fromMs, ToMs: toMs}); err != nil {
		return err
	}
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i := range b.Records {
			if err := enc.Encode(traceLine{T: "r", Rec: &b.Records[i]}); err != nil {
				return err
			}
		}
		for i := range b.Metrics {
			if err := enc.Encode(traceLine{T: "m", Met: &b.Metrics[i]}); err != nil {
				return err
			}
		}
		if b.Last {
			break
		}
	}
	return zw.Close()
}

// WriteTraceData writes a record/metric slice pair as a trace over
// [fromMs, toMs), chopping them into dense per-second batches first.
func WriteTraceData(w io.Writer, fromMs, toMs int64, recs []dbsim.LogRecord, rows []dbsim.SecondMetrics) error {
	return WriteTrace(w, fromMs, toMs, NewSliceSource(fromMs, toMs, recs, rows))
}

// TraceSource streams a pinsql trace back as dense batches over the
// header's bounds. Event lines are expected in emission order (the writer
// guarantees it); stragglers older than the current second are clamped
// into it, mirroring the chop contract. Malformed lines are counted and
// skipped.
type TraceSource struct {
	r       *bufio.Scanner
	hdr     traceHeader
	cur     int64 // next dense second to emit (absolute)
	pending *Batch
	eof     bool
	stats   Stats
}

// OpenTrace reads the trace header from r (gzip-compressed or plain) and
// returns a dense source over the trace's bounds. The caller keeps
// ownership of r; Close does not close it.
func OpenTrace(r io.Reader) (*TraceSource, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("ingest: open trace: %w", err)
		}
		return newTraceSource(zr)
	}
	return newTraceSource(br)
}

func newTraceSource(r io.Reader) (*TraceSource, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ingest: trace header: %w", err)
		}
		return nil, fmt.Errorf("ingest: trace header: empty input")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("ingest: trace header: %w", err)
	}
	if hdr.Format != traceFormat {
		return nil, fmt.Errorf("ingest: trace header: format %q, want %q", hdr.Format, traceFormat)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("ingest: trace header: version %d, want %d", hdr.Version, traceVersion)
	}
	if hdr.ToMs < hdr.FromMs {
		return nil, fmt.Errorf("ingest: trace header: to_ms %d < from_ms %d", hdr.ToMs, hdr.FromMs)
	}
	return &TraceSource{r: sc, hdr: hdr, cur: hdr.FromMs / 1000}, nil
}

// Next implements Source.
func (t *TraceSource) Next() (Batch, error) {
	toSec := (t.hdr.ToMs + 999) / 1000
	if t.cur >= toSec {
		return Batch{}, io.EOF
	}
	b := Batch{Second: t.cur}
	lastSec := toSec - 1
	for !t.eof {
		line, ok := t.scanLine()
		if !ok {
			break
		}
		sec, rec, met := t.place(line)
		if rec == nil && met == nil {
			continue // malformed, counted
		}
		if sec > t.cur && t.cur < lastSec {
			// Belongs to a later second: hold it and emit this batch.
			t.pending = &Batch{Second: sec}
			t.pendingAdd(rec, met)
			t.cur++
			return b, nil
		}
		// Current second, a straggler clamped into it, or overflow past
		// the final second (clamped into it, like chop).
		if rec != nil {
			t.stats.Records++
			b.Records = append(b.Records, *rec)
		}
		if met != nil {
			b.Metrics = append(b.Metrics, *met)
		}
	}
	t.cur++
	b.Last = t.eof && t.pending == nil && t.cur >= toSec
	return b, nil
}

// scanLine yields the next event line: a held batch's contents first, then
// the scanner. Returns ok == false when the stream is exhausted.
func (t *TraceSource) scanLine() (traceLine, bool) {
	if p := t.pending; p != nil {
		t.pending = nil
		if len(p.Records) > 0 {
			return traceLine{T: "r", Rec: &p.Records[0]}, true
		}
		return traceLine{T: "m", Met: &p.Metrics[0]}, true
	}
	for t.r.Scan() {
		var line traceLine
		if err := json.Unmarshal(t.r.Bytes(), &line); err != nil {
			t.stats.ParseErrors++
			continue
		}
		return line, true
	}
	t.eof = true
	return traceLine{}, false
}

// place decodes a line into its event and emission second. Unknown or
// incomplete lines count as parse errors.
func (t *TraceSource) place(line traceLine) (int64, *dbsim.LogRecord, *dbsim.SecondMetrics) {
	switch {
	case line.T == "r" && line.Rec != nil:
		return EmissionMs(*line.Rec) / 1000, line.Rec, nil
	case line.T == "m" && line.Met != nil:
		return line.Met.Second, nil, line.Met
	default:
		t.stats.ParseErrors++
		return 0, nil, nil
	}
}

// pendingAdd holds one event for a later second. Record counting happens
// when the event lands in an emitted batch, not here.
func (t *TraceSource) pendingAdd(rec *dbsim.LogRecord, met *dbsim.SecondMetrics) {
	if rec != nil {
		t.pending.Records = append(t.pending.Records, *rec)
	}
	if met != nil {
		t.pending.Metrics = append(t.pending.Metrics, *met)
	}
}

// Bounds implements Source: a trace's bounds are exact, from its header.
func (t *TraceSource) Bounds() (int64, int64) { return t.hdr.FromMs, t.hdr.ToMs }

// Stats implements Counting.
func (t *TraceSource) Stats() Stats { return t.stats }

// Close implements Source. The underlying reader belongs to the caller.
func (t *TraceSource) Close() error { return nil }
