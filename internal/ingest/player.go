package ingest

import (
	"io"
	"sync/atomic"

	"pinsql/internal/dbsim"
)

// Player pumps a Source through the pipeline one monitoring window at a
// time. It owns the window arithmetic the fleet used to delegate to
// dbsim.Instance.Run: consume exactly the batches of [fromMs, toMs),
// stream their records into a sink in batch order, and densify the metric
// rows into the window-relative per-second slice the collector and the
// report's mean gauges expect.
//
// PlayWindow and SkipTo are single-goroutine (the fleet's per-instance sim
// slot); Stats is safe to call concurrently — it backs the /metrics
// ingest-health gauges.
type Player struct {
	src     Source
	pending *Batch // read but not yet consumed (first batch past a window)
	eof     bool

	records  atomic.Int64
	late     atomic.Int64
	playhead atomic.Int64 // trace ms up to which batches were consumed
}

// NewPlayer wraps a source.
func NewPlayer(src Source) *Player {
	return &Player{src: src}
}

// PlayWindow consumes the batches of [fromMs, toMs): records go to sink
// (when non-nil) in batch order, metric rows are placed into a dense
// window-relative slice (one row per window second, zero rows where the
// trace had none, last row wins on duplicates, out-of-window rows
// dropped). It returns that slice, whether the source may have more
// batches after toMs, and an error. A window the source cannot reach at
// all — exhausted before its first second — returns io.EOF.
//
// The dense-batch contract is what bounds the read: after consuming
// second toMs-1 the Player stops without pulling the next batch, so a
// lazily simulating source is never asked to produce window w+1 while
// window w is being played.
func (p *Player) PlayWindow(fromMs, toMs int64, sink dbsim.LogSink) ([]dbsim.SecondMetrics, bool, error) {
	fromSec := fromMs / 1000
	seconds := (toMs - fromMs + 999) / 1000
	toSec := fromSec + seconds
	rows := make([]dbsim.SecondMetrics, seconds)
	for i := range rows {
		rows[i].Second = int64(i)
	}
	consumed := false
	for {
		if p.pending == nil {
			if p.eof {
				break
			}
			b, err := p.src.Next()
			if err == io.EOF {
				p.eof = true
				break
			}
			if err != nil {
				return nil, false, err
			}
			p.pending = &b
		}
		if p.pending.Second >= toSec {
			break
		}
		b := *p.pending
		p.pending = nil
		consumed = true
		if b.Last {
			p.eof = true
		}
		for _, rec := range b.Records {
			if rec.ArrivalMs < fromMs {
				// A straggler whose statement started before the window:
				// the collector skips it (and therefore never archives
				// it); count it so the loss is visible on /metrics.
				p.late.Add(1)
			}
			if sink != nil {
				sink(rec)
			}
			p.records.Add(1)
		}
		for _, m := range b.Metrics {
			rel := m.Second - fromSec
			if rel < 0 || rel >= seconds {
				continue
			}
			m.Second = rel
			rows[rel] = m
		}
		if end := (b.Second + 1) * 1000; end > p.playhead.Load() {
			p.playhead.Store(end)
		}
		if b.Second == toSec-1 {
			break // window complete; do not pull into the next one
		}
	}
	more := p.pending != nil || !p.eof
	if !consumed && !more {
		return nil, false, io.EOF
	}
	return rows, more, nil
}

// SkipTo advances the playhead to trace offset ms without delivering
// anything — crash recovery resuming at the first uncommitted window
// boundary. Sources implementing Seeker jump (the simulator re-derives
// any window from its seed instead of replaying the skipped ones, exactly
// as the pre-seam recovery did); generic sources are drained batch by
// batch. Skipped records count toward neither Records nor Late.
func (p *Player) SkipTo(ms int64) error {
	if cur := p.playhead.Load(); cur < ms {
		p.playhead.Store(ms)
	}
	if s, ok := p.src.(Seeker); ok {
		if err := s.SeekMs(ms); err != nil {
			return err
		}
		p.pending = nil
		return nil
	}
	sec := ms / 1000
	for {
		if p.pending == nil {
			if p.eof {
				return nil
			}
			b, err := p.src.Next()
			if err == io.EOF {
				p.eof = true
				return nil
			}
			if err != nil {
				return err
			}
			p.pending = &b
		}
		if p.pending.Second >= sec {
			return nil
		}
		p.pending = nil
	}
}

// PlayerStats is the ingest-health snapshot behind the per-instance
// /metrics series.
type PlayerStats struct {
	Records     int64   // records delivered into the pipeline
	Late        int64   // delivered records that arrived before their window
	ParseErrors int64   // malformed inputs the source chain skipped
	LagSeconds  float64 // known trace end minus the playhead, in seconds
}

// Stats snapshots the player's counters, folding in the source chain's
// parse errors and the lag against its (possibly best-effort) bounds.
func (p *Player) Stats() PlayerStats {
	st := PlayerStats{
		Records: p.records.Load(),
		Late:    p.late.Load(),
	}
	if c, ok := p.src.(Counting); ok {
		st.ParseErrors = c.Stats().ParseErrors
	}
	if _, to := p.src.Bounds(); to > 0 {
		if lag := to - p.playhead.Load(); lag > 0 {
			st.LagSeconds = float64(lag) / 1000
		}
	}
	return st
}

// Close closes the underlying source.
func (p *Player) Close() error { return p.src.Close() }
