package ingest

import (
	"io"
	"math"
	"testing"

	"pinsql/internal/dbsim"
)

func TestSessionSynthActiveSessions(t *testing.T) {
	// Three statements: one covering seconds 0..3, two short ones inside
	// second 1. Dense input via SliceSource.
	recs := []dbsim.LogRecord{
		{SQL: "UPDATE t SET x = 1", ArrivalMs: 200, ResponseMs: 3400, LockWaitMs: 50}, // [200, 3600)
		{SQL: "SELECT 1", ArrivalMs: 1100, ResponseMs: 300},                           // [1100, 1400)
		{SQL: "SELECT 2", ArrivalMs: 1600, ResponseMs: 200},                           // [1600, 1800)
	}
	src := NewSessionSynth(NewSliceSource(0, 4000, recs, nil), SynthOptions{})
	var rows []dbsim.SecondMetrics
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Metrics) != 1 {
			t.Fatalf("second %d: %d metric rows, want 1 synthesized", b.Second, len(b.Metrics))
		}
		rows = append(rows, b.Metrics[0])
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}

	// Mid-second instants: 500 (update only), 1500 (update; SELECT 1
	// ended at 1400, SELECT 2 starts at 1600), 2500, 3500.
	wantActive := []float64{1, 1, 1, 1}
	// QPS keyed by arrival second.
	wantQPS := []int{1, 2, 0, 0}
	for i, r := range rows {
		if r.ActiveSession != wantActive[i] {
			t.Errorf("second %d: ActiveSession = %v, want %v", i, r.ActiveSession, wantActive[i])
		}
		if r.QPS != wantQPS[i] {
			t.Errorf("second %d: QPS = %d, want %d", i, r.QPS, wantQPS[i])
		}
	}
	// Fractional occupancy: second 1 holds 1.0 (update) + 0.3 + 0.2.
	if got := rows[1].AvgActiveSession; math.Abs(got-1.5) > 1e-9 {
		t.Errorf("second 1 AvgActiveSession = %v, want 1.5", got)
	}
	if rows[0].RowLockWaits != 1 {
		t.Errorf("second 0 RowLockWaits = %d, want 1 (lock-waiting arrival)", rows[0].RowLockWaits)
	}
}

func TestSessionSynthLeavesSamplerRowsAlone(t *testing.T) {
	rows := []dbsim.SecondMetrics{{Second: 0, ActiveSession: 42}}
	src := NewSessionSynth(NewSliceSource(0, 2000, nil, rows), SynthOptions{})
	b0, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b0.Metrics) != 1 || b0.Metrics[0].ActiveSession != 42 {
		t.Fatalf("sampler row was rewritten: %+v", b0.Metrics)
	}
	b1, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Metrics) != 1 || b1.Metrics[0].ActiveSession != 0 {
		t.Fatalf("silent second not synthesized: %+v", b1.Metrics)
	}
}

func TestSessionSynthLookaheadSeesLongStatement(t *testing.T) {
	// A statement finishing (and therefore appearing) at second 8 must
	// still count toward second 1 when the lookahead covers it.
	recs := []dbsim.LogRecord{
		{SQL: "SELECT SLEEP(7)", ArrivalMs: 1200, ResponseMs: 7000}, // [1200, 8200)
	}
	src := NewSessionSynth(NewSliceSource(0, 10000, recs, nil), SynthOptions{LookaheadSec: 20})
	var rows []dbsim.SecondMetrics
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, b.Metrics...)
	}
	for sec := 2; sec <= 7; sec++ {
		if rows[sec].ActiveSession != 1 {
			t.Errorf("second %d: ActiveSession = %v, want 1 (long statement spans it)", sec, rows[sec].ActiveSession)
		}
	}
	if rows[9].ActiveSession != 0 {
		t.Errorf("second 9: ActiveSession = %v, want 0", rows[9].ActiveSession)
	}
}
