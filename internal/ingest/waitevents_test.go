package ingest

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"pinsql/internal/dbsim"
	"pinsql/internal/sqltemplate"
)

type weGoldenSecond struct {
	Second        int64   `json:"second"`
	ActiveSession float64 `json:"active_session"`
	CPUUsage      float64 `json:"cpu_usage"`
	IOPSUsage     float64 `json:"iops_usage"`
	RowLockWaits  int     `json:"row_lock_waits"`
	MDLWaits      int     `json:"mdl_waits"`
	QPS           int     `json:"qps"`
}

type weGoldenRecord struct {
	Template    string  `json:"template"`
	ArrivalMs   int64   `json:"arrival_ms"`
	ResponseMs  float64 `json:"response_ms"`
	LockWaitMs  float64 `json:"lock_wait_ms,omitempty"`
	EmissionSec int64   `json:"emission_sec"`
}

type weGolden struct {
	Records     int64            `json:"records"`
	ParseErrors int64            `json:"parse_errors"`
	Seconds     []weGoldenSecond `json:"seconds"`
	Entries     []weGoldenRecord `json:"entries"`
}

func TestWaitEventsGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "waitevents_fixture.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := NewWaitEventsSource(f, WaitEventsOptions{Cores: 8})

	var got weGolden
	var rows []dbsim.SecondMetrics
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, b.Metrics...)
		for _, m := range b.Metrics {
			got.Seconds = append(got.Seconds, weGoldenSecond{
				Second:        m.Second,
				ActiveSession: m.ActiveSession,
				CPUUsage:      m.CPUUsage,
				IOPSUsage:     m.IOPSUsage,
				RowLockWaits:  m.RowLockWaits,
				MDLWaits:      m.MDLWaits,
				QPS:           m.QPS,
			})
		}
		for _, r := range b.Records {
			got.Entries = append(got.Entries, weGoldenRecord{
				Template:    sqltemplate.Normalize(r.SQL),
				ArrivalMs:   r.ArrivalMs,
				ResponseMs:  r.ResponseMs,
				LockWaitMs:  r.LockWaitMs,
				EmissionSec: b.Second,
			})
		}
	}
	st := src.Stats()
	got.Records, got.ParseErrors = st.Records, st.ParseErrors

	// Structural checks: the fixture has two bad lines and a lock storm
	// over seconds 10..20.
	if st.ParseErrors != 2 {
		t.Errorf("ParseErrors = %d, want 2", st.ParseErrors)
	}
	var stormSeen bool
	for _, m := range rows {
		if m.RowLockWaits >= 4 && m.MDLWaits >= 1 {
			stormSeen = true
		}
	}
	if !stormSeen {
		t.Error("no second saw the lock storm (RowLockWaits >= 4 with an MDL wait)")
	}
	if st.Records == 0 {
		t.Error("no records reaped from disappearing sessions")
	}

	compareGolden(t, filepath.Join("testdata", "waitevents_fixture.golden.json"), got)
}
