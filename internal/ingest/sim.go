package ingest

import (
	"fmt"
	"io"

	"pinsql/internal/dbsim"
	"pinsql/internal/workload"
)

// SimSource adapts the workload simulator to the Source seam: the trace of
// a dbsim.Instance run window by window against its workload world. It
// simulates lazily — window w runs when its first batch is pulled, which
// under the fleet's lockstep scheduling is strictly after window w-1's
// repairs were applied — and reproduces the pre-seam fleet inner loop
// exactly: per-window sampling reseed (WindowSeed), per-window arrival
// stream (seed+w), records in completion order.
//
// The caller keeps ownership of the world and simulator; incident
// injection and repair execution mutate them between windows exactly as
// before the seam existed.
type SimSource struct {
	world    *workload.World
	sim      *dbsim.Instance
	seed     int64
	windows  int
	windowMs int64

	next int // next window to simulate
	buf  []Batch
	pos  int
}

// NewSimSource wraps a world/simulator pair as a trace of `windows`
// monitoring windows of windowSec seconds each.
func NewSimSource(world *workload.World, sim *dbsim.Instance, seed int64, windows, windowSec int) *SimSource {
	return &SimSource{
		world:    world,
		sim:      sim,
		seed:     seed,
		windows:  windows,
		windowMs: int64(windowSec) * 1000,
	}
}

// Next implements Source: batches of the current window's buffer, then
// lazily simulate the next window, then io.EOF.
func (s *SimSource) Next() (Batch, error) {
	for s.pos >= len(s.buf) {
		if s.next >= s.windows {
			return Batch{}, io.EOF
		}
		if err := s.simulate(); err != nil {
			return Batch{}, err
		}
	}
	b := s.buf[s.pos]
	s.pos++
	b.Last = s.pos == len(s.buf) && s.next >= s.windows
	return b, nil
}

// simulate runs one window and chops its output into dense batches.
func (s *SimSource) simulate() error {
	w := s.next
	fromMs := int64(w) * s.windowMs
	toMs := fromMs + s.windowMs

	// Reseed the metric-sampling RNG per window so a crash-resumed run
	// replays this window bit-identically regardless of prior history.
	s.sim.ReseedSampling(WindowSeed(s.seed, w))
	var recs []dbsim.LogRecord
	secs, err := s.sim.Run(dbsim.RunOptions{
		StartMs: fromMs,
		EndMs:   toMs,
		Source:  s.world.Source(fromMs, toMs, s.seed+int64(w)),
		Sink:    func(r dbsim.LogRecord) { recs = append(recs, r) },
	})
	if err != nil {
		return err
	}
	// The engine's rows are dense and 0-based per run; rebase to absolute
	// trace seconds (the Player rebases back to window-relative, so the
	// rows the collector sees are bit-identical to the pre-seam path).
	fromSec := fromMs / 1000
	rows := make([]dbsim.SecondMetrics, len(secs))
	copy(rows, secs)
	for i := range rows {
		rows[i].Second = fromSec + int64(i)
	}
	s.buf = chop(fromMs, toMs, recs, rows)
	s.pos = 0
	s.next = w + 1
	return nil
}

// Bounds implements Source; simulator bounds are exact.
func (s *SimSource) Bounds() (int64, int64) { return 0, int64(s.windows) * s.windowMs }

// SeekMs implements Seeker: jump to a window boundary without simulating
// the skipped prefix. Each window depends only on (world state, seed) —
// never on having simulated its predecessors — which is the same property
// pre-seam crash recovery relied on when it resumed at st.nextSim.
func (s *SimSource) SeekMs(ms int64) error {
	if ms%s.windowMs != 0 {
		return fmt.Errorf("ingest: SimSource seek to %dms is not a window boundary (window %dms)", ms, s.windowMs)
	}
	s.next = int(ms / s.windowMs)
	s.buf = nil
	s.pos = 0
	return nil
}

// Close implements Source. The world and simulator outlive the source.
func (s *SimSource) Close() error { return nil }
