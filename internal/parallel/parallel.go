// Package parallel provides the bounded worker pool behind PinSQL's
// parallel diagnosis pipeline. Every helper takes an explicit worker
// count so the knob can be threaded from core.Config down to each hot
// loop: workers == 1 runs inline on the calling goroutine (the exact
// sequential path, no pool involved), workers <= 0 resolves to
// runtime.GOMAXPROCS(0), and any other value bounds the fan-out.
//
// Determinism contract: the helpers schedule work dynamically (an atomic
// chunk cursor, so stragglers do not serialize the pool) but they never
// decide where results go — callers must write into index-ordered slices
// (result[i] from fn(i)), never append from goroutines. Under that
// discipline the output is bit-identical for every worker count, which is
// what the pipeline's Workers-equivalence property tests assert.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps the user-facing Workers knob to an effective worker count:
// values >= 1 are taken as-is, anything else (0 or negative) means "use
// the hardware", i.e. runtime.GOMAXPROCS(0).
func Resolve(workers int) int {
	if workers >= 1 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// minGrain is the smallest chunk the dynamic scheduler hands out; it
// amortizes the atomic fetch-add over several iterations when n is large
// while still letting small inputs spread across the pool.
const minGrain = 8

// ForEach invokes fn(i) for every i in [0, n), spread over the resolved
// worker count. fn must be safe to call concurrently and must only write
// to state owned by index i. A panic inside fn is re-raised on the
// calling goroutine after the pool drains.
func ForEach(workers, n int, fn func(i int)) {
	Blocks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Blocks invokes fn(lo, hi) over disjoint chunks covering [0, n), spread
// over the resolved worker count. It is ForEach for loops that want to
// hoist per-chunk setup (buffers, locals) out of the inner iteration.
// Chunks are handed out dynamically, so differently-sized work items
// (e.g. rows of a triangular pair scan) still balance.
func Blocks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	grain := n / (workers * 4)
	if grain < minGrain {
		grain = minGrain
	}

	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				hi := int(cursor.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
