// Package parallel provides the bounded worker pool behind PinSQL's
// parallel diagnosis pipeline. Every helper takes an explicit worker
// count so the knob can be threaded from core.Config down to each hot
// loop: workers == 1 runs inline on the calling goroutine (the exact
// sequential path, no pool involved), workers <= 0 resolves to
// runtime.GOMAXPROCS(0), and any other value bounds the fan-out.
//
// Determinism contract: the helpers schedule work dynamically (an atomic
// chunk cursor, so stragglers do not serialize the pool) but they never
// decide where results go — callers must write into index-ordered slices
// (result[i] from fn(i)), never append from goroutines. Under that
// discipline the output is bit-identical for every worker count, which is
// what the pipeline's Workers-equivalence property tests assert.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps the user-facing Workers knob to an effective worker count:
// values >= 1 are taken as-is, anything else (0 or negative) means "use
// the hardware", i.e. runtime.GOMAXPROCS(0).
func Resolve(workers int) int {
	if workers >= 1 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// minGrain is the smallest chunk the dynamic scheduler hands out; it
// amortizes the atomic fetch-add over several iterations when n is large
// while still letting small inputs spread across the pool.
const minGrain = 8

// ForEach invokes fn(i) for every i in [0, n), spread over the resolved
// worker count. fn must be safe to call concurrently and must only write
// to state owned by index i. A panic inside fn is re-raised on the
// calling goroutine after the pool drains.
func ForEach(workers, n int, fn func(i int)) {
	Blocks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// OrderedStream runs produce(i) for every i in [0, n) across the resolved
// worker count and hands each result to consume in index order, on the
// calling goroutine. It is the streaming analogue of ForEach for pipelines
// whose items are too large to materialize all at once (a generated anomaly
// case): at most workers+1 produced-but-undelivered results exist at any
// moment, so memory stays bounded while production overlaps consumption.
//
// workers == 1 degenerates to the exact sequential produce-then-consume
// loop (no goroutines). The determinism contract of the package holds:
// consume observes the same (i, value) sequence for every worker count, so
// any order-sensitive accumulation in consume is bit-identical.
//
// The first error — from the lowest-index failing produce, or from consume
// — cancels the stream and is returned; later-index produce errors that
// sequential execution would never have reached are discarded. A panic in
// produce is re-raised on the calling goroutine after the pool drains.
func OrderedStream[T any](workers, n int, produce func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := produce(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	window := workers + 1
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		next      int // next index to assign to a producer
		delivered int // results handed to consume so far
		vals      = make(map[int]T, window)
		errs      = make(map[int]error, window)
		stopped   bool
		panicked  any
		wg        sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicked == nil {
					panicked = r
				}
				stopped = true
				cond.Broadcast()
				mu.Unlock()
			}
		}()
		for {
			mu.Lock()
			for !stopped && next < n && next >= delivered+window {
				cond.Wait()
			}
			if stopped || next >= n {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()

			v, err := produce(i)

			mu.Lock()
			vals[i] = v
			errs[i] = err
			cond.Broadcast()
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}

	var retErr error
	mu.Lock()
	for delivered < n {
		for {
			if _, ok := errs[delivered]; ok {
				break
			}
			if panicked != nil {
				break
			}
			cond.Wait()
		}
		if panicked != nil {
			break
		}
		i := delivered
		err := errs[i]
		v := vals[i]
		delete(errs, i)
		delete(vals, i)
		if err != nil {
			retErr = err
			break
		}
		// Open the window before consuming so producers keep running
		// while consume executes on this goroutine.
		delivered++
		cond.Broadcast()
		mu.Unlock()
		cerr := consume(i, v)
		mu.Lock()
		if cerr != nil {
			retErr = cerr
			break
		}
	}
	stopped = true
	cond.Broadcast()
	mu.Unlock()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return retErr
}

// Blocks invokes fn(lo, hi) over disjoint chunks covering [0, n), spread
// over the resolved worker count. It is ForEach for loops that want to
// hoist per-chunk setup (buffers, locals) out of the inner iteration.
// Chunks are handed out dynamically, so differently-sized work items
// (e.g. rows of a triangular pair scan) still balance.
func Blocks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	grain := n / (workers * 4)
	if grain < minGrain {
		grain = minGrain
	}

	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				hi := int(cursor.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
