package parallel

import (
	"sync"
)

// Pool is a long-lived fixed-size worker pool with two priority classes.
// The fleet scheduler uses it to multiplex many per-instance state
// machines over a bounded set of OS threads: simulator steps are submitted
// at high priority (the simulated database never pauses for the monitor —
// mirroring production, where the DB does not wait for PinSQL), while
// diagnosis drains run at low priority and only occupy workers the
// simulators leave idle.
//
// Scheduling is priority-strict but not preemptive: when a worker frees
// up it always prefers the high queue; a running low-priority task is
// never interrupted. Both queues are unbounded FIFOs — backpressure is
// the caller's job (the fleet sheds windows instead of letting the low
// queue grow without bound).
//
// A panic inside a task is captured; the first one is re-raised on the
// goroutine that calls Close. This mirrors the package's ForEach/Blocks
// contract: worker panics never kill the process silently.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	high     []func()
	low      []func()
	closed   bool
	panicked any
	wg       sync.WaitGroup
}

// NewPool starts a pool with the resolved worker count (see Resolve).
func NewPool(workers int) *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	n := Resolve(workers)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for !p.closed && len(p.high) == 0 && len(p.low) == 0 {
			p.cond.Wait()
		}
		var task func()
		switch {
		case len(p.high) > 0:
			task = p.high[0]
			p.high = p.high[1:]
		case len(p.low) > 0:
			task = p.low[0]
			p.low = p.low[1:]
		default: // closed and drained
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		p.run(task)
	}
}

func (p *Pool) run(task func()) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.panicked == nil {
				p.panicked = r
			}
			p.mu.Unlock()
		}
	}()
	task()
}

// Submit enqueues a high-priority task. Submitting to a closed pool
// panics — the fleet must stop producing before Close.
func (p *Pool) Submit(task func()) {
	p.enqueue(task, true)
}

// SubmitLow enqueues a low-priority task: it runs only when no
// high-priority work is queued.
func (p *Pool) SubmitLow(task func()) {
	p.enqueue(task, false)
}

func (p *Pool) enqueue(task func(), high bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		panic("parallel: Submit on closed Pool")
	}
	if high {
		p.high = append(p.high, task)
	} else {
		p.low = append(p.low, task)
	}
	p.cond.Signal()
}

// Close drains both queues, stops the workers, and re-raises the first
// task panic (if any) on the calling goroutine. Tasks queued before Close
// still run; Submit after Close panics.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	if p.panicked != nil {
		panic(p.panicked)
	}
}
