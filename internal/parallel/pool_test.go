package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsAllTasks checks every submitted task executes exactly once
// and Close waits for stragglers.
func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	var n atomic.Int64
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			p.Submit(func() { n.Add(1) })
		} else {
			p.SubmitLow(func() { n.Add(1) })
		}
	}
	p.Close()
	if got := n.Load(); got != 500 {
		t.Fatalf("ran %d tasks, want 500", got)
	}
}

// TestPoolPriority pins a single worker and checks that queued
// high-priority tasks run before queued low-priority ones.
func TestPoolPriority(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	// Occupy the only worker so the later submissions pile up in queue.
	p.Submit(func() { <-gate })
	// Give the worker a moment to pick up the blocker.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		p.SubmitLow(func() { mu.Lock(); order = append(order, "low"); mu.Unlock() })
	}
	for i := 0; i < 3; i++ {
		p.Submit(func() { mu.Lock(); order = append(order, "high"); mu.Unlock() })
	}
	close(gate)
	p.Close()
	want := []string{"high", "high", "high", "low", "low", "low"}
	if len(order) != len(want) {
		t.Fatalf("ran %d tasks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestPoolPanicPropagates checks a task panic is re-raised at Close and
// does not kill other tasks.
func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	p.Submit(func() { panic("boom") })
	for i := 0; i < 50; i++ {
		p.SubmitLow(func() { ran.Add(1) })
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected Close to re-raise the task panic")
		} else if r != "boom" {
			t.Fatalf("panic = %v, want boom", r)
		}
		if got := ran.Load(); got != 50 {
			t.Fatalf("surviving tasks ran %d times, want 50", got)
		}
	}()
	p.Close()
}

// TestPoolSubmitAfterClosePanics locks the misuse contract.
func TestPoolSubmitAfterClosePanics(t *testing.T) {
	p := NewPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected Submit after Close to panic")
		}
	}()
	p.Submit(func() {})
}
