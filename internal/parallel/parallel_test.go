package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Resolve(0); got != want {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Resolve(-3); got != want {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestForEachCoversEachIndexOnce is the scheduler's core invariant: every
// index in [0, n) is visited exactly once, for any worker count.
func TestForEachCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 4, 16, 100} {
		for _, n := range []int{0, 1, 2, 7, 8, 9, 63, 64, 65, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestBlocksPartition checks Blocks hands out disjoint chunks that cover
// [0, n) with no overlap, via property testing over (workers, n).
func TestBlocksPartition(t *testing.T) {
	prop := func(w uint8, n16 uint16) bool {
		n := int(n16) % 2000
		hits := make([]atomic.Int32, n)
		Blocks(int(w)%9, n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestForEachSequentialWhenOneWorker asserts workers=1 stays on the
// calling goroutine and runs in index order — the bit-for-bit sequential
// path the Workers knob promises.
func TestForEachSequentialWhenOneWorker(t *testing.T) {
	var order []int
	ForEach(1, 100, func(i int) { order = append(order, i) }) // no locking: must be single-goroutine
	for i, v := range order {
		if i != v {
			t.Fatalf("workers=1 out of order at %d: %d", i, v)
		}
	}
	if len(order) != 100 {
		t.Fatalf("visited %d of 100", len(order))
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 1000, func(i int) {
		if i == 500 {
			panic("boom")
		}
	})
}

// TestOrderedStreamDelivery asserts consume sees every (i, produce(i)) pair
// in strict index order for a spread of worker counts, and that the
// sequence is identical across them (the determinism contract).
func TestOrderedStreamDelivery(t *testing.T) {
	const n = 500
	var want []int
	for _, workers := range []int{1, 2, 3, 8, 64} {
		var got []int
		err := OrderedStream(workers, n,
			func(i int) (int, error) { return i * i, nil },
			func(i int, v int) error {
				if v != i*i {
					t.Fatalf("workers=%d: consume(%d) got %d", workers, i, v)
				}
				got = append(got, v)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: consumed %d of %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out of order at %d: %d", workers, i, v)
			}
		}
		if want == nil {
			want = got
		}
	}
}

// TestOrderedStreamBoundedWindow asserts at most workers+1 results are
// produced but not yet consumed at any moment — the memory bound that
// makes streaming generation safe for multi-megabyte cases.
func TestOrderedStreamBoundedWindow(t *testing.T) {
	const workers, n = 4, 200
	var produced, consumed atomic.Int64
	var maxLead atomic.Int64
	err := OrderedStream(workers, n,
		func(i int) (int, error) {
			lead := produced.Add(1) - consumed.Load()
			for {
				old := maxLead.Load()
				if lead <= old || maxLead.CompareAndSwap(old, lead) {
					break
				}
			}
			return i, nil
		},
		func(i int, v int) error {
			time.Sleep(100 * time.Microsecond) // slow consumer forces backpressure
			consumed.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// In-flight produce calls can momentarily exceed the undelivered window
	// by the worker count itself; workers + (workers+1) is the hard cap.
	if lead := maxLead.Load(); lead > int64(2*workers+1) {
		t.Fatalf("produced-but-unconsumed lead reached %d, cap %d", lead, 2*workers+1)
	}
}

// TestOrderedStreamProduceError asserts the lowest-index produce error
// wins: items before it are consumed, items after are not delivered.
func TestOrderedStreamProduceError(t *testing.T) {
	boom := errors.New("boom")
	var got []int
	err := OrderedStream(4, 100,
		func(i int) (int, error) {
			if i == 37 {
				return 0, boom
			}
			return i, nil
		},
		func(i int, v int) error { got = append(got, i); return nil })
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 37 {
		t.Fatalf("consumed %d items before the error, want 37", len(got))
	}
	for i, v := range got {
		if i != v {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

// TestOrderedStreamConsumeError asserts a consume error cancels the stream
// and is returned, with no further deliveries.
func TestOrderedStreamConsumeError(t *testing.T) {
	stop := errors.New("stop")
	delivered := 0
	err := OrderedStream(4, 1000,
		func(i int) (int, error) { return i, nil },
		func(i int, v int) error {
			delivered++
			if i == 10 {
				return stop
			}
			return nil
		})
	if err != stop {
		t.Fatalf("err = %v, want stop", err)
	}
	if delivered != 11 {
		t.Fatalf("delivered %d, want 11", delivered)
	}
}

// TestOrderedStreamPanicPropagates asserts a produce panic is re-raised on
// the calling goroutine after the pool drains.
func TestOrderedStreamPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	_ = OrderedStream(4, 100,
		func(i int) (int, error) {
			if i == 20 {
				panic("kaboom")
			}
			return i, nil
		},
		func(i int, v int) error { return nil })
}

// TestOrderedStreamSequentialWhenOneWorker asserts workers=1 interleaves
// produce and consume on the calling goroutine with no pool: produce(i+1)
// must not start before consume(i) returns.
func TestOrderedStreamSequentialWhenOneWorker(t *testing.T) {
	var trace []string
	err := OrderedStream(1, 3,
		func(i int) (int, error) { trace = append(trace, fmt.Sprintf("p%d", i)); return i, nil },
		func(i int, v int) error { trace = append(trace, fmt.Sprintf("c%d", i)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	want := "p0 c0 p1 c1 p2 c2"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}
