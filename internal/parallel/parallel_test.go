package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestResolve(t *testing.T) {
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Resolve(0); got != want {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Resolve(-3); got != want {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestForEachCoversEachIndexOnce is the scheduler's core invariant: every
// index in [0, n) is visited exactly once, for any worker count.
func TestForEachCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 4, 16, 100} {
		for _, n := range []int{0, 1, 2, 7, 8, 9, 63, 64, 65, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestBlocksPartition checks Blocks hands out disjoint chunks that cover
// [0, n) with no overlap, via property testing over (workers, n).
func TestBlocksPartition(t *testing.T) {
	prop := func(w uint8, n16 uint16) bool {
		n := int(n16) % 2000
		hits := make([]atomic.Int32, n)
		Blocks(int(w)%9, n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestForEachSequentialWhenOneWorker asserts workers=1 stays on the
// calling goroutine and runs in index order — the bit-for-bit sequential
// path the Workers knob promises.
func TestForEachSequentialWhenOneWorker(t *testing.T) {
	var order []int
	ForEach(1, 100, func(i int) { order = append(order, i) }) // no locking: must be single-goroutine
	for i, v := range order {
		if i != v {
			t.Fatalf("workers=1 out of order at %d: %d", i, v)
		}
	}
	if len(order) != 100 {
		t.Fatalf("visited %d of 100", len(order))
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 1000, func(i int) {
		if i == 500 {
			panic("boom")
		}
	})
}
