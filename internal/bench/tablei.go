// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§VIII) on the simulated substrate. Each
// RunXxx function produces a structured result plus a Format method that
// prints rows shaped like the paper's, so `pinsql-bench` and the testing.B
// benchmarks share one implementation.
package bench

import (
	"fmt"
	"strings"
	"time"

	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/rank"
	"pinsql/internal/sqltemplate"
)

// TableIRow is one method's results in Table I.
type TableIRow struct {
	Method string
	R      rank.Eval // identifying R-SQLs
	H      rank.Eval // identifying H-SQLs
	TimeMs float64   // mean diagnosis time per case, milliseconds
}

// TableI holds the full Table I reproduction.
type TableI struct {
	Rows      []TableIRow
	Cases     int
	Templates float64 // mean templates per case
	Detected  int     // cases whose phenomenon the detector found unaided

	// Mean per-stage diagnosis time (§VIII-B's breakdown: estimating
	// individual active sessions, ranking H-SQLs, clustering+filtering,
	// history trend verification), milliseconds.
	StageMs struct {
		Estimate, RankH, Cluster, Verify float64
	}
}

// RunTableI evaluates PinSQL and the Top-SQL baselines over a generated
// corpus (the ADAC substitute).
func RunTableI(opt cases.Options) (*TableI, error) {
	type acc struct {
		r, h   [][]sqltemplate.ID
		timeMs float64
	}
	methods := []string{"Top-RT", "Top-ER", "Top-EN", "PinSQL"}
	byMethod := make(map[string]*acc, len(methods))
	for _, m := range methods {
		byMethod[m] = &acc{}
	}
	var rTruth, hTruth []map[sqltemplate.ID]bool
	var templates float64
	detected := 0
	var stEst, stRank, stCluster, stVerify float64

	err := cases.Stream(opt, func(lab *cases.Labeled) error {
		rTruth = append(rTruth, lab.RSQLs)
		hTruth = append(hTruth, lab.HSQLs)
		templates += float64(len(lab.Case.Snapshot.Templates))
		if lab.Detected {
			detected++
		}
		snap := lab.Case.Snapshot
		as, ae := lab.Case.AS, lab.Case.AE

		for _, m := range rank.Methods() {
			start := time.Now()
			ranked := rank.TopSQL(snap, as, ae, m)
			a := byMethod[string(m)]
			a.timeMs += float64(time.Since(start).Microseconds()) / 1000
			a.r = append(a.r, ranked)
			a.h = append(a.h, ranked)
		}

		fr := lab.Collector.Frame()
		d := core.DiagnoseFrame(lab.Case, fr, core.DefaultConfig())
		a := byMethod["PinSQL"]
		a.timeMs += float64(d.Time.Total().Microseconds()) / 1000
		stEst += float64(d.Time.EstimateSession.Microseconds()) / 1000
		stRank += float64(d.Time.RankHSQL.Microseconds()) / 1000
		stCluster += float64(d.Time.ClusterFilter.Microseconds()) / 1000
		stVerify += float64(d.Time.VerifyRank.Microseconds()) / 1000
		a.r = append(a.r, d.RSQLIDs())
		a.h = append(a.h, d.HSQLIDs())
		return nil
	})
	if err != nil {
		return nil, err
	}

	n := len(rTruth)
	out := &TableI{Cases: n, Detected: detected}
	if n > 0 {
		out.Templates = templates / float64(n)
		out.StageMs.Estimate = stEst / float64(n)
		out.StageMs.RankH = stRank / float64(n)
		out.StageMs.Cluster = stCluster / float64(n)
		out.StageMs.Verify = stVerify / float64(n)
	}
	var individual []rank.Eval
	var individualH []rank.Eval
	for _, m := range methods {
		a := byMethod[m]
		row := TableIRow{
			Method: m,
			R:      rank.Evaluate(a.r, rTruth),
			H:      rank.Evaluate(a.h, hTruth),
			TimeMs: a.timeMs / float64(max(n, 1)),
		}
		if m != "PinSQL" {
			individual = append(individual, row.R)
			individualH = append(individualH, row.H)
		}
		out.Rows = append(out.Rows, row)
	}
	// Insert Top-All (the best of the individual baselines) before PinSQL.
	topAll := TableIRow{
		Method: "Top-All",
		R:      rank.BestOf(individual...),
		H:      rank.BestOf(individualH...),
	}
	last := out.Rows[len(out.Rows)-1]
	out.Rows = append(out.Rows[:len(out.Rows)-1], topAll, last)
	return out, nil
}

// Format renders the table in the paper's layout.
func (t *TableI) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: identifying R-SQLs and H-SQLs (%d cases, %.0f templates/case avg)\n", t.Cases, t.Templates)
	fmt.Fprintf(&b, "%-8s | %6s %6s %6s %10s | %6s %6s %6s\n",
		"Method", "R-H@1", "R-H@5", "R-MRR", "Time", "H-H@1", "H-H@5", "H-MRR")
	for _, r := range t.Rows {
		timeStr := "-"
		if r.TimeMs > 0 {
			timeStr = fmt.Sprintf("%.2fms", r.TimeMs)
		}
		fmt.Fprintf(&b, "%-8s | %6.1f %6.1f %6.2f %10s | %6.1f %6.1f %6.2f\n",
			r.Method, 100*r.R.H1, 100*r.R.H5, r.R.MRR, timeStr, 100*r.H.H1, 100*r.H.H5, r.H.MRR)
	}
	fmt.Fprintf(&b, "detector found %d/%d phenomena unaided; PinSQL stage means: estimate %.1fms, rank %.1fms, cluster %.1fms, verify %.1fms\n",
		t.Detected, t.Cases, t.StageMs.Estimate, t.StageMs.RankH, t.StageMs.Cluster, t.StageMs.Verify)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
