package bench

import (
	"fmt"
	"strings"
	"time"

	"pinsql/internal/fleet"
	"pinsql/internal/parallel"
)

// FleetBenchOptions configures the fleet-throughput sweep.
type FleetBenchOptions struct {
	Seed    int64
	Windows int  // windows per instance; 0 → 3 (2 when Small)
	Small   bool // CI-sized: fewer/shorter windows, smaller sweep
}

// FleetBenchRow is one (instances × workers) cell of the sweep.
type FleetBenchRow struct {
	Instances     int     `json:"instances"`
	Workers       int     `json:"workers"`
	Windows       int     `json:"windows"` // committed across the fleet
	WallSec       float64 `json:"wall_sec"`
	WindowsPerSec float64 `json:"windows_per_sec"`
	ShedRate      float64 `json:"shed_rate"` // shed windows / committed windows
	PeakQueue     int     `json:"peak_queue"`
	Records       int64   `json:"records"`
	Dropped       int64   `json:"dropped"` // broker backpressure loss
}

// FleetBench is the document behind BENCH_fleet.json: how fleet throughput
// scales with instance count and scheduler workers, and what the bounded
// queues shed along the way.
type FleetBench struct {
	WindowSec int             `json:"window_sec"`
	Rows      []FleetBenchRow `json:"rows"`
}

// RunFleetBench sweeps instance counts × scheduler worker counts over the
// in-memory fleet and measures end-to-end monitoring throughput.
func RunFleetBench(opt FleetBenchOptions) (*FleetBench, error) {
	instanceCounts := []int{1, 8, 64}
	workerCounts := []int{1, 2, parallel.Resolve(0)}
	windowSec := 300
	windows := opt.Windows
	if windows <= 0 {
		windows = 3
	}
	if opt.Small {
		instanceCounts = []int{1, 4, 8}
		windowSec = 120
		if opt.Windows <= 0 {
			windows = 2
		}
	}
	seen := map[int]bool{}
	workers := workerCounts[:0]
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			workers = append(workers, w)
		}
	}

	out := &FleetBench{WindowSec: windowSec}
	for _, n := range instanceCounts {
		for _, w := range workers {
			specs := fleet.DefaultFleet(n, opt.Seed, windows, windowSec)
			f, err := fleet.New(specs, fleet.Options{Workers: w, QueueDepth: 4})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			f.Start()
			if err := f.Wait(); err != nil {
				f.Close()
				return nil, err
			}
			wall := time.Since(start).Seconds()
			st := f.Status()
			row := FleetBenchRow{
				Instances: n,
				Workers:   w,
				Windows:   st.Committed,
				WallSec:   wall,
				ShedRate:  float64(st.Shed) / float64(max(st.Committed, 1)),
			}
			if wall > 0 {
				row.WindowsPerSec = float64(st.Committed) / wall
			}
			for _, is := range st.Instances {
				if is.PeakQueue > row.PeakQueue {
					row.PeakQueue = is.PeakQueue
				}
				row.Records += is.Records
				row.Dropped += is.Dropped
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Format renders the sweep as a table.
func (b *FleetBench) Format() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Fleet throughput sweep (%ds windows)\n", b.WindowSec)
	s.WriteString("  instances  workers  windows   wall(s)  win/s    shed%  peakQ   records  dropped\n")
	for _, r := range b.Rows {
		fmt.Fprintf(&s, "  %9d  %7d  %7d  %8.2f  %5.1f  %6.1f  %5d  %8d  %7d\n",
			r.Instances, r.Workers, r.Windows, r.WallSec, r.WindowsPerSec,
			r.ShedRate*100, r.PeakQueue, r.Records, r.Dropped)
	}
	return s.String()
}
