package bench

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pinsql/internal/fleet"
	"pinsql/internal/shard"
	"pinsql/internal/shard/remote"
)

// FleetBenchOptions configures the fleet-throughput sweep.
type FleetBenchOptions struct {
	Seed    int64
	Windows int  // windows per instance; 0 → 3 (2 when Small)
	Small   bool // CI-sized: fewer/shorter windows, smaller sweep

	// ProfileDir, when non-empty, writes one CPU profile per in-process
	// sweep cell as fleet_i<instances>_s<shards>_w<workers>.pprof under
	// the directory (created if missing) — the investigation handle for
	// scheduling regressions like the known 1→2 worker slowdown on a
	// single-CPU host. Process-mode cells are not profiled: the
	// coordinator mostly waits on its workers, so its profile is noise.
	ProfileDir string

	// NoProc skips the multi-process cells (used when the binary cannot
	// re-exec itself as a worker, e.g. under `go test` harnesses that
	// don't route through MaybeWorker).
	NoProc bool
}

// FleetBenchRow is one (instances × shards × workers) cell of the sweep.
type FleetBenchRow struct {
	Instances int `json:"instances"`
	Shards    int `json:"shards"`
	Workers   int `json:"workers"` // total across shards
	// Mode is "inproc" (all shards in one process) or "proc" (each shard
	// a supervised worker process behind the HTTP/JSON worker API).
	Mode          string  `json:"mode"`
	Windows       int     `json:"windows"` // committed across the fleet
	WallSec       float64 `json:"wall_sec"`
	WindowsPerSec float64 `json:"windows_per_sec"`
	// ShardSpeedup is windows/sec relative to the same instance count's
	// in-process (shards=1, workers=1) cell — the headline sharding win.
	// 1.0 on the baseline cell itself. For proc cells the gap to the
	// matching inproc cell is the process-transport overhead.
	ShardSpeedup float64 `json:"shard_speedup"`
	// ScalingEfficiency is ShardSpeedup per worker: 1.0 is perfect linear
	// scaling, below 1.0 the extra workers are partly idle or contending.
	// On a single-CPU host every multi-worker cell sits near 1/workers by
	// construction — check GOMAXPROCS before reading this column.
	ScalingEfficiency float64 `json:"scaling_efficiency"`
	ShedRate          float64 `json:"shed_rate"` // shed windows / committed windows
	PeakQueue         int     `json:"peak_queue"`
	Records           int64   `json:"records"`
	Dropped           int64   `json:"dropped"` // broker backpressure loss
	// ReportHash fingerprints the fleet report (FNV-1a). Every cell with
	// the same instance count must agree — across shard counts AND across
	// the process boundary — so the sweep doubles as the cross-shard and
	// cross-mode determinism gate.
	ReportHash string `json:"report_hash"`
	Identical  bool   `json:"identical"` // report matched the instance count's first cell
}

// FleetBench is the document behind BENCH_fleet.json: how fleet throughput
// scales with instance count, shard count, and scheduler workers, what the
// bounded queues shed along the way, and what running each shard as a
// separate worker process costs on top.
type FleetBench struct {
	WindowSec  int             `json:"window_sec"`
	GOMAXPROCS int             `json:"gomaxprocs"` // scaling ceiling of the host the sweep ran on
	Identical  bool            `json:"identical"`  // every cell's report matched its instance count's baseline
	Rows       []FleetBenchRow `json:"rows"`
}

// fleetCells is the (shards, workers) grid swept in-process at each
// instance count; cells with more shards than instances are skipped (an
// empty shard is legal but measures nothing).
var fleetCells = []struct{ shards, workers int }{
	{1, 1}, // baseline: the unsharded sequential fleet
	{1, 2}, // the known worker-scaling regression cell
	{2, 2},
	{8, 8},
}

// fleetProcCells is the subset re-run in multi-process mode: the same
// cell shape as an in-process one so the wall-clock delta isolates the
// transport + process-supervision overhead, and the report hash feeds
// the cross-mode determinism gate.
var fleetProcCells = []struct{ shards, workers int }{
	{2, 2},
}

// RunFleetBench sweeps instance counts × (shards × workers) over the
// in-memory fleet and measures end-to-end monitoring throughput, then
// re-runs a subset of cells with each shard as a separate worker process.
// Within one instance count every cell — in-process or multi-process —
// must produce a byte-identical report; a divergence sets Identical=false
// (and pinsql-bench exits non-zero).
func RunFleetBench(opt FleetBenchOptions) (*FleetBench, error) {
	instanceCounts := []int{1, 8, 64, 128}
	windowSec := 300
	windows := opt.Windows
	if windows <= 0 {
		windows = 3
	}
	if opt.Small {
		instanceCounts = []int{1, 8, 128}
		windowSec = 120
		if opt.Windows <= 0 {
			windows = 2
		}
	}

	if opt.ProfileDir != "" {
		if err := os.MkdirAll(opt.ProfileDir, 0o755); err != nil {
			return nil, err
		}
	}

	out := &FleetBench{WindowSec: windowSec, GOMAXPROCS: runtime.GOMAXPROCS(0), Identical: true}
	for _, n := range instanceCounts {
		baseline := 0.0 // in-process (shards=1, workers=1) windows/sec for this instance count
		baseHash := ""  // report fingerprint every other cell must match
		for _, cell := range fleetCells {
			if cell.shards > n {
				continue
			}
			profPath := ""
			if opt.ProfileDir != "" {
				profPath = filepath.Join(opt.ProfileDir, fmt.Sprintf("fleet_i%d_s%d_w%d.pprof", n, cell.shards, cell.workers))
			}
			row, err := runFleetCell(opt.Seed, n, windows, windowSec, cell.shards, cell.workers, nil, profPath)
			if err != nil {
				return nil, err
			}
			row.Mode = "inproc"
			if cell.shards == 1 && cell.workers == 1 {
				baseline = row.WindowsPerSec
				baseHash = row.ReportHash
			}
			finishFleetRow(&row, baseline, baseHash, out)
		}
		if opt.NoProc {
			continue
		}
		for _, cell := range fleetProcCells {
			if cell.shards > n {
				continue
			}
			factory := remote.Factory(remote.Options{
				Specs: remote.SpecSet{Instances: n, Seed: opt.Seed, Windows: windows, WindowSec: windowSec},
			})
			row, err := runFleetCell(opt.Seed, n, windows, windowSec, cell.shards, cell.workers, factory, "")
			if err != nil {
				return nil, err
			}
			row.Mode = "proc"
			finishFleetRow(&row, baseline, baseHash, out)
		}
	}
	return out, nil
}

// runFleetCell measures one sweep cell: build the fleet, run it to
// completion, and fingerprint its report. A nil factory runs the shards
// in-process; a remote factory runs each as a worker process.
func runFleetCell(seed int64, n, windows, windowSec, shards, workers int, factory shard.RuntimeFactory, profPath string) (FleetBenchRow, error) {
	var row FleetBenchRow
	specs := fleet.DefaultFleet(n, seed, windows, windowSec)
	m, err := shard.New(specs, shard.Options{Shards: shards, Workers: workers, QueueDepth: 4, Runtime: factory})
	if err != nil {
		return row, err
	}
	var prof *os.File
	if profPath != "" {
		if prof, err = os.Create(profPath); err != nil {
			m.Close()
			return row, err
		}
		if err := pprof.StartCPUProfile(prof); err != nil {
			prof.Close()
			m.Close()
			return row, err
		}
	}
	start := time.Now()
	m.Start()
	if err := m.Wait(); err != nil {
		if prof != nil {
			pprof.StopCPUProfile()
			prof.Close()
		}
		m.Close()
		return row, err
	}
	wall := time.Since(start).Seconds()
	if prof != nil {
		pprof.StopCPUProfile()
		if err := prof.Close(); err != nil {
			m.Close()
			return row, err
		}
	}
	st := m.Status()
	mrep, err := m.Report()
	if err != nil {
		m.Close()
		return row, err
	}
	row = FleetBenchRow{
		Instances:  n,
		Shards:     shards,
		Workers:    m.Workers(),
		Windows:    st.Committed,
		WallSec:    wall,
		ShedRate:   float64(st.Shed) / float64(max(st.Committed, 1)),
		ReportHash: hashReport(mrep),
	}
	if wall > 0 {
		row.WindowsPerSec = float64(st.Committed) / wall
	}
	for _, is := range st.Instances {
		row.PeakQueue = max(row.PeakQueue, is.PeakQueue)
		row.Records += is.Records
		row.Dropped += is.Dropped
	}
	if err := m.Close(); err != nil {
		return row, err
	}
	return row, nil
}

// finishFleetRow fills the baseline-relative columns and appends the row.
func finishFleetRow(row *FleetBenchRow, baseline float64, baseHash string, out *FleetBench) {
	if baseline > 0 {
		row.ShardSpeedup = row.WindowsPerSec / baseline
		if row.Workers > 0 {
			row.ScalingEfficiency = row.ShardSpeedup / float64(row.Workers)
		}
	}
	row.Identical = row.ReportHash == baseHash
	if !row.Identical {
		out.Identical = false
	}
	out.Rows = append(out.Rows, *row)
}

// hashReport fingerprints a fleet report for the cross-shard determinism
// gate (FNV-1a 64, matching the partition function's family).
func hashReport(report string) string {
	h := fnv.New64a()
	h.Write([]byte(report))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Format renders the sweep as a table.
func (b *FleetBench) Format() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Fleet throughput sweep (%ds windows, GOMAXPROCS=%d)\n", b.WindowSec, b.GOMAXPROCS)
	s.WriteString("  instances  shards  workers  mode    windows   wall(s)  win/s   spdup   eff    shed%  peakQ   records  dropped  identical\n")
	for _, r := range b.Rows {
		fmt.Fprintf(&s, "  %9d  %6d  %7d  %-6s  %7d  %8.2f  %5.1f  %6.2f  %4.2f  %6.1f  %5d  %8d  %7d  %9v\n",
			r.Instances, r.Shards, r.Workers, r.Mode, r.Windows, r.WallSec, r.WindowsPerSec,
			r.ShardSpeedup, r.ScalingEfficiency, r.ShedRate*100, r.PeakQueue, r.Records, r.Dropped, r.Identical)
	}
	if !b.Identical {
		s.WriteString("  DIVERGENCE: some cells' reports differ from their instance count's baseline (cross-shard or cross-mode)\n")
	}
	return s.String()
}
