package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"pinsql/internal/fleet"
	"pinsql/internal/parallel"
)

// FleetBenchOptions configures the fleet-throughput sweep.
type FleetBenchOptions struct {
	Seed    int64
	Windows int  // windows per instance; 0 → 3 (2 when Small)
	Small   bool // CI-sized: fewer/shorter windows, smaller sweep

	// ProfileDir, when non-empty, writes one CPU profile per sweep cell
	// as fleet_i<instances>_w<workers>.pprof under the directory
	// (created if missing) — the investigation handle for worker-scaling
	// regressions like the known 1→2 worker slowdown at 8 instances.
	ProfileDir string
}

// FleetBenchRow is one (instances × workers) cell of the sweep.
type FleetBenchRow struct {
	Instances     int     `json:"instances"`
	Workers       int     `json:"workers"`
	Windows       int     `json:"windows"` // committed across the fleet
	WallSec       float64 `json:"wall_sec"`
	WindowsPerSec float64 `json:"windows_per_sec"`
	// ScalingEfficiency is windows/sec per worker relative to the same
	// instance count's 1-worker cell: 1.0 is perfect linear scaling,
	// below 1.0 the extra workers are partly idle or contending. Zero
	// when the sweep has no 1-worker baseline for the instance count.
	ScalingEfficiency float64 `json:"scaling_efficiency"`
	ShedRate          float64 `json:"shed_rate"` // shed windows / committed windows
	PeakQueue         int     `json:"peak_queue"`
	Records           int64   `json:"records"`
	Dropped           int64   `json:"dropped"` // broker backpressure loss
}

// FleetBench is the document behind BENCH_fleet.json: how fleet throughput
// scales with instance count and scheduler workers, and what the bounded
// queues shed along the way.
type FleetBench struct {
	WindowSec int             `json:"window_sec"`
	Rows      []FleetBenchRow `json:"rows"`
}

// RunFleetBench sweeps instance counts × scheduler worker counts over the
// in-memory fleet and measures end-to-end monitoring throughput.
func RunFleetBench(opt FleetBenchOptions) (*FleetBench, error) {
	instanceCounts := []int{1, 8, 64}
	workerCounts := []int{1, 2, parallel.Resolve(0)}
	windowSec := 300
	windows := opt.Windows
	if windows <= 0 {
		windows = 3
	}
	if opt.Small {
		instanceCounts = []int{1, 4, 8}
		windowSec = 120
		if opt.Windows <= 0 {
			windows = 2
		}
	}
	seen := map[int]bool{}
	workers := workerCounts[:0]
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			workers = append(workers, w)
		}
	}

	if opt.ProfileDir != "" {
		if err := os.MkdirAll(opt.ProfileDir, 0o755); err != nil {
			return nil, err
		}
	}

	out := &FleetBench{WindowSec: windowSec}
	for _, n := range instanceCounts {
		baseline := 0.0 // 1-worker windows/sec for this instance count
		for _, w := range workers {
			specs := fleet.DefaultFleet(n, opt.Seed, windows, windowSec)
			f, err := fleet.New(specs, fleet.Options{Workers: w, QueueDepth: 4})
			if err != nil {
				return nil, err
			}
			var prof *os.File
			if opt.ProfileDir != "" {
				name := filepath.Join(opt.ProfileDir, fmt.Sprintf("fleet_i%d_w%d.pprof", n, w))
				if prof, err = os.Create(name); err != nil {
					f.Close()
					return nil, err
				}
				if err := pprof.StartCPUProfile(prof); err != nil {
					prof.Close()
					f.Close()
					return nil, err
				}
			}
			start := time.Now()
			f.Start()
			if err := f.Wait(); err != nil {
				if prof != nil {
					pprof.StopCPUProfile()
					prof.Close()
				}
				f.Close()
				return nil, err
			}
			wall := time.Since(start).Seconds()
			if prof != nil {
				pprof.StopCPUProfile()
				if err := prof.Close(); err != nil {
					f.Close()
					return nil, err
				}
			}
			st := f.Status()
			row := FleetBenchRow{
				Instances: n,
				Workers:   w,
				Windows:   st.Committed,
				WallSec:   wall,
				ShedRate:  float64(st.Shed) / float64(max(st.Committed, 1)),
			}
			if wall > 0 {
				row.WindowsPerSec = float64(st.Committed) / wall
			}
			if w == 1 {
				baseline = row.WindowsPerSec
			}
			if baseline > 0 && w > 0 {
				row.ScalingEfficiency = row.WindowsPerSec / (baseline * float64(w))
			}
			for _, is := range st.Instances {
				if is.PeakQueue > row.PeakQueue {
					row.PeakQueue = is.PeakQueue
				}
				row.Records += is.Records
				row.Dropped += is.Dropped
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Format renders the sweep as a table.
func (b *FleetBench) Format() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Fleet throughput sweep (%ds windows)\n", b.WindowSec)
	s.WriteString("  instances  workers  windows   wall(s)  win/s   eff    shed%  peakQ   records  dropped\n")
	for _, r := range b.Rows {
		fmt.Fprintf(&s, "  %9d  %7d  %7d  %8.2f  %5.1f  %4.2f  %6.1f  %5d  %8d  %7d\n",
			r.Instances, r.Workers, r.Windows, r.WallSec, r.WindowsPerSec,
			r.ScalingEfficiency, r.ShedRate*100, r.PeakQueue, r.Records, r.Dropped)
	}
	return s.String()
}
