package bench

import (
	"fmt"
	"strings"

	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/rank"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/workload"
)

// ParamSweepRow is one parameter setting's evaluation.
type ParamSweepRow struct {
	Param float64
	R     rank.Eval
	H     rank.Eval
}

// ParamSweep is a sensitivity study over one pipeline hyperparameter —
// the DESIGN.md ablations beyond the paper's Fig. 6 (smooth factor ks,
// clustering threshold τ, bucket count K).
type ParamSweep struct {
	Name  string
	Rows  []ParamSweepRow
	Cases int
}

// RunParamSweep evaluates the pipeline over a shared corpus with the named
// parameter swept. Supported names: "ks", "tau", "buckets".
func RunParamSweep(opt cases.Options, name string, values []float64) (*ParamSweep, error) {
	cfgs := make([]core.Config, len(values))
	for i, v := range values {
		cfg := core.DefaultConfig()
		switch name {
		case "ks":
			cfg.SmoothKs = v
		case "tau":
			cfg.Tau = v
		case "buckets":
			cfg.Buckets = int(v)
		default:
			return nil, fmt.Errorf("bench: unknown sweep parameter %q", name)
		}
		cfgs[i] = cfg
	}

	rRank := make([][][]sqltemplate.ID, len(values))
	hRank := make([][][]sqltemplate.ID, len(values))
	var rTruth, hTruth []map[sqltemplate.ID]bool
	err := cases.Stream(opt, func(lab *cases.Labeled) error {
		rTruth = append(rTruth, lab.RSQLs)
		hTruth = append(hTruth, lab.HSQLs)
		fr := lab.Collector.Frame()
		for i, cfg := range cfgs {
			d := core.DiagnoseFrame(lab.Case, fr, cfg)
			rRank[i] = append(rRank[i], d.RSQLIDs())
			hRank[i] = append(hRank[i], d.HSQLIDs())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &ParamSweep{Name: name, Cases: len(rTruth)}
	for i, v := range values {
		out.Rows = append(out.Rows, ParamSweepRow{
			Param: v,
			R:     rank.Evaluate(rRank[i], rTruth),
			H:     rank.Evaluate(hRank[i], hTruth),
		})
	}
	return out, nil
}

// Format renders the sweep.
func (p *ParamSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parameter sweep: %s (%d cases)\n", p.Name, p.Cases)
	fmt.Fprintf(&b, "%10s | %6s %6s %6s | %6s %6s %6s\n", p.Name, "R-H@1", "R-H@5", "R-MRR", "H-H@1", "H-H@5", "H-MRR")
	for _, r := range p.Rows {
		fmt.Fprintf(&b, "%10.2f | %6.1f %6.1f %6.2f | %6.1f %6.1f %6.2f\n",
			r.Param, 100*r.R.H1, 100*r.R.H5, r.R.MRR, 100*r.H.H1, 100*r.H.H5, r.H.MRR)
	}
	return b.String()
}

// SmallCorpus returns a reduced corpus configuration for fast harness runs
// (tests and -short benchmarks).
func SmallCorpus(seed int64, count int) cases.Options {
	opt := cases.DefaultOptions()
	opt.Seed = seed
	opt.Count = count
	opt.TraceSec = 1500
	opt.AnomalyStartSec = 800
	opt.AnomalyMinDurSec = 240
	opt.AnomalyMaxDurSec = 360
	opt.FillerServices = 2
	opt.FillerSpecs = 5
	opt.HistoryDays = []int{1, 3}
	return opt
}

// FamilyBreakdown evaluates PinSQL per anomaly family, exposing where the
// residual errors live (the paper reports only the aggregate).
type FamilyBreakdown struct {
	Rows  map[workload.AnomalyKind]rank.Eval
	Cases int
}

// RunFamilyBreakdown runs PinSQL over a corpus and groups R-SQL accuracy by
// injected family.
func RunFamilyBreakdown(opt cases.Options) (*FamilyBreakdown, error) {
	rank4 := make(map[workload.AnomalyKind][][]sqltemplate.ID)
	truth4 := make(map[workload.AnomalyKind][]map[sqltemplate.ID]bool)
	n := 0
	err := cases.Stream(opt, func(lab *cases.Labeled) error {
		n++
		fr := lab.Collector.Frame()
		d := core.DiagnoseFrame(lab.Case, fr, core.DefaultConfig())
		rank4[lab.Kind] = append(rank4[lab.Kind], d.RSQLIDs())
		truth4[lab.Kind] = append(truth4[lab.Kind], lab.RSQLs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &FamilyBreakdown{Rows: make(map[workload.AnomalyKind]rank.Eval), Cases: n}
	for kind, ranks := range rank4 {
		out.Rows[kind] = rank.Evaluate(ranks, truth4[kind])
	}
	return out, nil
}

// Format renders the per-family accuracy.
func (f *FamilyBreakdown) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-family R-SQL accuracy (%d cases)\n", f.Cases)
	for _, kind := range []workload.AnomalyKind{
		workload.KindBusinessSpike, workload.KindPoorSQL,
		workload.KindLockStorm, workload.KindMDL,
	} {
		ev, ok := f.Rows[kind]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-15s H@1 %5.1f  H@5 %5.1f  MRR %.2f  (%d cases)\n",
			kind, 100*ev.H1, 100*ev.H5, ev.MRR, ev.Cases)
	}
	return b.String()
}
