package bench

import (
	"strings"
	"testing"

	"pinsql/internal/dbsim"
)

func TestRunTableISmall(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	res, err := RunTableI(SmallCorpus(3, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 8 {
		t.Fatalf("cases = %d", res.Cases)
	}
	byName := map[string]TableIRow{}
	for _, r := range res.Rows {
		byName[r.Method] = r
	}
	pin, topAll := byName["PinSQL"], byName["Top-All"]
	// The headline result: PinSQL beats the best baseline on R-SQL H@1
	// by a wide margin, and on H-SQL H@1.
	if pin.R.H1 <= topAll.R.H1 {
		t.Errorf("PinSQL R-H@1 %.2f ≤ Top-All %.2f\n%s", pin.R.H1, topAll.R.H1, res.Format())
	}
	if pin.R.H1 < 0.6 {
		t.Errorf("PinSQL R-H@1 = %.2f, want ≥ 0.6\n%s", pin.R.H1, res.Format())
	}
	if pin.H.H1 < topAll.H.H1 {
		t.Errorf("PinSQL H-H@1 %.2f < Top-All %.2f\n%s", pin.H.H1, topAll.H.H1, res.Format())
	}
	// Baselines are effectively instant; PinSQL takes real time but far
	// below the anomaly duration.
	if pin.TimeMs <= byName["Top-RT"].TimeMs {
		t.Errorf("PinSQL time %.2fms ≤ Top-RT %.2fms", pin.TimeMs, byName["Top-RT"].TimeMs)
	}
	if pin.TimeMs > 60_000 {
		t.Errorf("PinSQL time %.2fms exceeds a minute", pin.TimeMs)
	}
	if !strings.Contains(res.Format(), "PinSQL") {
		t.Error("Format missing PinSQL row")
	}
}

func TestRunFig6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	res, err := RunFig6(SmallCorpus(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("variants = %d, want 9", len(res.Rows))
	}
	full := res.Rows[0]
	if full.Variant != "PinSQL" {
		t.Fatalf("first variant = %s", full.Variant)
	}
	// Removing the session estimation must hurt H-SQL identification
	// (the paper's single largest ablation: −31.5 % H@1).
	for _, r := range res.Rows {
		if r.Variant == "w/o Estimate Session" && r.H.H1 > full.H.H1 {
			t.Errorf("w/o Estimate Session H-H@1 %.2f > full %.2f\n%s", r.H.H1, full.H.H1, res.Format())
		}
	}
	if !strings.Contains(res.Format(), "w/o Cumulative Threshold") {
		t.Error("Format missing ablation rows")
	}
}

func TestRunFig7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	res, err := RunFig7(7, []int{50, 120, 250}, []int{300, 600, 900}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Errorf("Workers = %d, want 2", res.Workers)
	}
	if len(res.ByTemplates) != 3 || len(res.ByPeriod) != 3 {
		t.Fatalf("points = %d/%d", len(res.ByTemplates), len(res.ByPeriod))
	}
	for _, p := range append(res.ByTemplates, res.ByPeriod...) {
		if p.TimeSec <= 0 || p.TimeSec > 60 {
			t.Errorf("implausible sequential diagnosis time %v", p.TimeSec)
		}
		if p.ParSec <= 0 || p.ParSec > 60 {
			t.Errorf("implausible parallel diagnosis time %v", p.ParSec)
		}
	}
	// Longer anomaly periods must not be cheaper by an order of magnitude
	// (the paper observes time grows with period length).
	if res.ByPeriod[2].TimeSec < res.ByPeriod[0].TimeSec/10 {
		t.Errorf("period sweep times look wrong: %+v", res.ByPeriod)
	}
	if out := res.Format(); !strings.Contains(out, "fit:") {
		t.Errorf("format missing fit: %s", out)
	}
}

func TestRunFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario is slow")
	}
	res, err := RunFig8(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ActiveSession) != fig8End {
		t.Fatalf("timeline length = %d, want %d", len(res.ActiveSession), fig8End)
	}
	base := meanOf(res.ActiveSession, 0, fig8AnomalyStart)
	anom := meanOf(res.ActiveSession, fig8AnomalyStart+60, fig8ManualAction)
	throttled := meanOf(res.ActiveSession, fig8ManualAction+60, fig8ThrottleOff)
	returned := meanOf(res.ActiveSession, fig8ThrottleOff+60, fig8PinSQLEnabled)
	repaired := meanOf(res.ActiveSession, fig8PinSQLEnabled+120, fig8End)

	if anom < base+3 {
		t.Errorf("anomaly lift too small: base %.2f anomaly %.2f", base, anom)
	}
	// The manual Top-RT throttle reduces the phenomenon but does not
	// resolve it fundamentally; removing it brings the anomaly back.
	if throttled >= anom {
		t.Errorf("manual throttle had no effect: %.2f vs %.2f", throttled, anom)
	}
	if returned < throttled {
		t.Errorf("anomaly did not return after throttle removal: %.2f vs %.2f", returned, throttled)
	}
	// PinSQL's repair brings the metric near the baseline.
	if repaired > base+0.5*(anom-base) {
		t.Errorf("repair ineffective: base %.2f repaired %.2f anomaly %.2f", base, repaired, anom)
	}
	if !res.PinpointedCorrect() {
		t.Errorf("PinSQL pinpointed %s, truth %v", res.PinpointedRSQL, res.TrueRSQLs)
	}
	for _, id := range res.TrueRSQLs {
		if res.ThrottledTemplate == id {
			t.Log("note: Top-RT coincided with a true R-SQL in this seed")
		}
	}
	if !strings.Contains(res.Format(), "PinSQL pinpointed") {
		t.Error("Format incomplete")
	}
}

func TestRunTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("replay pairs are slow")
	}
	res, err := RunTableII(13, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	rsql, slow := res.Rows[0], res.Rows[1]
	if rsql.Optimized == 0 || slow.Optimized == 0 {
		t.Fatalf("no optimizations measured: %+v", res.Rows)
	}
	// The paper's claim: optimizing R-SQLs gains more than optimizing
	// slow SQLs, on both metrics.
	if rsql.TresGain <= slow.TresGain {
		t.Errorf("tres gain ordering violated: R-SQL %.1f%% ≤ slow %.1f%%\n%s",
			rsql.TresGain, slow.TresGain, res.Format())
	}
	if rsql.RowsGain <= slow.RowsGain {
		t.Errorf("rows gain ordering violated: R-SQL %.1f%% ≤ slow %.1f%%\n%s",
			rsql.RowsGain, slow.RowsGain, res.Format())
	}
	if rsql.TresGain < 60 || rsql.TresGain > 100 {
		t.Errorf("R-SQL tres gain %.1f%% implausible", rsql.TresGain)
	}
}

func TestRunTableIII(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	res, err := RunTableIII(17, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	byRT, noBkt, bkt := res.Rows[0], res.Rows[1], res.Rows[2]
	// Table III ordering: buckets ≥ no-buckets > by-RT on correlation,
	// reversed on MSE.
	if !(bkt.Corr >= noBkt.Corr && noBkt.Corr > byRT.Corr) {
		t.Errorf("correlation ordering violated:\n%s", res.Format())
	}
	if !(bkt.MSE <= noBkt.MSE && noBkt.MSE < byRT.MSE) {
		t.Errorf("MSE ordering violated:\n%s", res.Format())
	}
	if bkt.Corr < 0.9 {
		t.Errorf("bucketed correlation %.3f, want ≥ 0.9", bkt.Corr)
	}
}

func TestRunTableIV(t *testing.T) {
	if testing.Short() {
		t.Skip("stress cells are slow")
	}
	opt := StressOptions{DurationSec: 6, Seed: 19}
	res, err := RunTableIV(opt)
	if err != nil {
		t.Fatal(err)
	}
	normal := res.Cells[dbsim.PerfSchemaOff]
	full := res.Cells[dbsim.PerfSchemaConIns]
	pfs := res.Cells[dbsim.PerfSchemaOn]
	for _, mix := range res.Mixes {
		if normal[mix].QPS <= 0 {
			t.Fatalf("no throughput for %s", mix)
		}
		if normal[mix].Decline != 0 {
			t.Errorf("normal decline = %v", normal[mix].Decline)
		}
		// pfs alone costs ~8–13 %; everything on costs ~26–30 %.
		if pfs[mix].Decline < 5 || pfs[mix].Decline > 18 {
			t.Errorf("%s pfs decline = %.2f%%, want ~8–13%%", mix, pfs[mix].Decline)
		}
		if full[mix].Decline < 20 || full[mix].Decline > 36 {
			t.Errorf("%s pfs+con+ins decline = %.2f%%, want ~26–30%%", mix, full[mix].Decline)
		}
		if full[mix].Decline <= pfs[mix].Decline {
			t.Errorf("%s full decline ≤ pfs decline", mix)
		}
	}
	if !strings.Contains(res.Format(), "pfs+con+ins") {
		t.Error("Format missing rows")
	}
}

func TestRunParamSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	res, err := RunParamSweep(SmallCorpus(23, 4), "ks", []float64{5, 30, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Cases != 4 {
		t.Fatalf("sweep = %+v", res)
	}
	if _, err := RunParamSweep(SmallCorpus(23, 1), "nope", []float64{1}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if !strings.Contains(res.Format(), "ks") {
		t.Error("Format incomplete")
	}
}

func TestRunFamilyBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	res, err := RunFamilyBreakdown(SmallCorpus(29, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("families = %d, want 4", len(res.Rows))
	}
	if !strings.Contains(res.Format(), "business_spike") {
		t.Error("Format incomplete")
	}
}

func TestRunLogStoreBenchSmall(t *testing.T) {
	res, err := RunLogStoreBench(LogStoreBenchOptions{Seed: 1, Topics: 2, Records: 5000, Windows: 8, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.Equivalent {
		t.Errorf("backends streamed divergent scan sequences\n%s", res.Format())
	}
	for _, row := range res.Rows {
		if row.AppendPerSec <= 0 || row.ScanPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", row.Backend, row)
		}
	}
	seg := res.Rows[1]
	if seg.DiskBytes <= 0 {
		t.Errorf("segment backend reported %d disk bytes", seg.DiskBytes)
	}
	if seg.RecoverMs <= 0 {
		t.Errorf("segment backend reported %.3f ms recovery", seg.RecoverMs)
	}
	if !strings.Contains(res.Format(), "equivalence: OK") {
		t.Errorf("Format:\n%s", res.Format())
	}
}
