package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pinsql/internal/logstore"
	"pinsql/internal/logstore/segment"
)

// LogStoreBenchOptions sizes the log-store backend comparison.
type LogStoreBenchOptions struct {
	Seed    int64
	Topics  int    // distinct topics (database instances)
	Records int    // records ingested per topic
	Windows int    // scan windows sampled per topic
	Dir     string // segment store directory ("" = a fresh temp dir, removed after)
}

func (o *LogStoreBenchOptions) withDefaults() {
	if o.Topics <= 0 {
		o.Topics = 4
	}
	if o.Records <= 0 {
		o.Records = 50_000
	}
	if o.Windows <= 0 {
		o.Windows = 64
	}
}

// LogStoreBenchRow is one backend's measured throughput.
type LogStoreBenchRow struct {
	Backend      string
	AppendPerSec float64 // records ingested per second
	ScanPerSec   float64 // records streamed per second across the window sweep
	RecoverMs    float64 // close + reopen + first-scan time (durable backend only)
	DiskBytes    int64   // on-disk footprint after ingest (durable backend only)
}

// LogStoreBench compares the in-memory and durable segment log-store
// backends on the same synthetic ingest: append throughput, windowed scan
// throughput, and — for the durable store — restart-recovery latency and
// disk footprint. The run also cross-checks that both backends stream the
// identical record sequence (the equivalence contract), so the numbers are
// comparing like for like.
type LogStoreBench struct {
	Opt        LogStoreBenchOptions
	Rows       []LogStoreBenchRow
	Equivalent bool // scan sweeps matched record-for-record
}

// logStoreWorkload is the deterministic ingest both backends replay:
// mildly out-of-order arrivals (lock-delayed completions) over a spread of
// templates, the shape collect.Collector produces.
func logStoreWorkload(opt LogStoreBenchOptions) (topics []string, recs [][]logstore.Record) {
	rng := rand.New(rand.NewSource(opt.Seed))
	for ti := 0; ti < opt.Topics; ti++ {
		topics = append(topics, fmt.Sprintf("db-%02d", ti))
		clock := int64(0)
		rs := make([]logstore.Record, opt.Records)
		for i := range rs {
			clock += int64(rng.Intn(20))
			rs[i] = logstore.Record{
				TemplateIdx:  int32(rng.Intn(500)),
				ArrivalMs:    clock - int64(rng.Intn(3000)),
				ResponseMs:   rng.Float64() * 200,
				ExaminedRows: int64(rng.Intn(5000)),
			}
		}
		recs = append(recs, rs)
	}
	return topics, recs
}

// RunLogStoreBench ingests the same workload into both backends and
// measures them. The segment store additionally pays for durability
// (fsync on seal) and is re-opened cold to time crash/restart recovery.
func RunLogStoreBench(opt LogStoreBenchOptions) (*LogStoreBench, error) {
	opt.withDefaults()
	dir := opt.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "pinsql-logstore-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	topics, recs := logStoreWorkload(opt)
	span := int64(0)
	for _, rs := range recs {
		for _, r := range rs {
			if r.ArrivalMs > span {
				span = r.ArrivalMs
			}
		}
	}

	res := &LogStoreBench{Opt: opt, Equivalent: true}

	mem := logstore.New(0)
	seg, err := segment.Open(dir, segment.Options{})
	if err != nil {
		return nil, err
	}

	ingest := func(s logstore.Backend) float64 {
		start := time.Now()
		for ti, topic := range topics {
			for _, r := range recs[ti] {
				s.AppendLoose(topic, r)
			}
		}
		return float64(opt.Topics*opt.Records) / time.Since(start).Seconds()
	}

	// The scan sweep streams Windows random sub-windows per topic and a
	// full-range pass, returning records/sec and a FNV-style checksum of
	// everything streamed for the cross-backend equivalence check.
	sweep := func(s logstore.Backend) (float64, uint64) {
		rng := rand.New(rand.NewSource(opt.Seed + 1))
		streamed := 0
		var sum uint64 = 14695981039346656037
		start := time.Now()
		for _, topic := range topics {
			windows := make([][2]int64, 0, opt.Windows+1)
			windows = append(windows, [2]int64{-1 << 62, 1 << 62})
			for w := 0; w < opt.Windows; w++ {
				from := rng.Int63n(span + 1)
				windows = append(windows, [2]int64{from, from + rng.Int63n(span/4+1)})
			}
			for _, win := range windows {
				s.ScanFunc(topic, win[0], win[1], func(r logstore.Record) bool {
					streamed++
					sum = (sum ^ uint64(r.ArrivalMs) ^ uint64(r.TemplateIdx)<<32 ^ uint64(r.ExaminedRows)) * 1099511628211
					return true
				})
			}
		}
		return float64(streamed) / time.Since(start).Seconds(), sum
	}

	memAppend := ingest(mem)
	segAppend := ingest(seg)
	memScan, memSum := sweep(mem)
	segScan, segSum := sweep(seg)
	if memSum != segSum {
		res.Equivalent = false
	}

	// Restart recovery: flush, measure the cold reopen plus a first full
	// scan per topic (index rebuild + wal replay are paid here).
	if err := seg.Close(); err != nil {
		return nil, err
	}
	var diskBytes int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			diskBytes += info.Size()
		}
		return nil
	})
	start := time.Now()
	reopened, err := segment.Open(dir, segment.Options{})
	if err != nil {
		return nil, err
	}
	for _, topic := range topics {
		reopened.ScanFunc(topic, -1<<62, 1<<62, func(logstore.Record) bool { return true })
	}
	recoverMs := float64(time.Since(start).Microseconds()) / 1000
	if err := reopened.Close(); err != nil {
		return nil, err
	}

	res.Rows = []LogStoreBenchRow{
		{Backend: "in-memory", AppendPerSec: memAppend, ScanPerSec: memScan},
		{Backend: "segment", AppendPerSec: segAppend, ScanPerSec: segScan, RecoverMs: recoverMs, DiskBytes: diskBytes},
	}
	return res, nil
}

// Format renders the comparison.
func (r *LogStoreBench) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Log-store backends: %d topics × %d records, %d scan windows\n",
		r.Opt.Topics, r.Opt.Records, r.Opt.Windows)
	fmt.Fprintf(&b, "%-10s | %14s | %14s | %12s | %12s\n",
		"Backend", "append rec/s", "scan rec/s", "recover ms", "disk bytes")
	for _, row := range r.Rows {
		disk, rec := "-", "-"
		if row.Backend == "segment" {
			disk = fmt.Sprintf("%d", row.DiskBytes)
			rec = fmt.Sprintf("%.1f", row.RecoverMs)
		}
		fmt.Fprintf(&b, "%-10s | %14.0f | %14.0f | %12s | %12s\n",
			row.Backend, row.AppendPerSec, row.ScanPerSec, rec, disk)
	}
	if r.Equivalent {
		b.WriteString("scan equivalence: OK (both backends streamed identical sequences)\n")
	} else {
		b.WriteString("scan equivalence: FAILED — backend outputs diverged\n")
	}
	return b.String()
}
