package bench

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"time"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/dbsim"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
)

// IncrementalSpeedupFloor is the committed performance floor of the
// per-tick incremental frame close: RunDiagnoseBench fails (and the CI
// smoke exits non-zero) if the incremental path delivers less than this
// many times the rebuild path's windows/sec. Measured headroom is large
// (two orders of magnitude on the default corpus — the rebuild pays
// O(window) clones and sorts every tick, the incremental close O(new
// records)), so the floor trips on real regressions, not machine noise.
const IncrementalSpeedupFloor = 5.0

// IncrementalBench compares two ways of producing a sealed window frame
// (plus detection) on every per-second monitoring tick of a filling
// window:
//
//   - rebuild: from-scratch frame construction (collect.RebuildFrame —
//     clone every series, concatenate and re-sort every observation
//     group) followed by batch anomaly detection, i.e. the pre-
//     incremental per-tick cost;
//   - incremental: the delta frame build (Collector.Frame patches only
//     the dirty suffix against the previous sealed frame) followed by the
//     rolling-state streaming detector.
//
// Both paths run over the same collector state; every tick is first
// cross-checked — frames bit-identical, phenomena deeply equal — before
// the rates count.
type IncrementalBench struct {
	Seconds       int `json:"seconds"`         // window length ticked through
	RecordsPerSec int `json:"records_per_sec"` // ingest rate per tick
	Templates     int `json:"templates"`       // template universe size

	// Frame close: ingest-and-seal against from-scratch rebuild. The
	// headline Speedup is floor-gated.
	RebuildWindowsPerSec     float64 `json:"rebuild_windows_per_sec"`
	IncrementalWindowsPerSec float64 `json:"incremental_windows_per_sec"`
	Speedup                  float64 `json:"speedup"`
	SpeedupFloor             float64 `json:"speedup_floor"`

	// Detection: rolling-state streaming detector against the batch
	// detector over the same per-tick prefixes (informational — the two
	// share the O(n) scan code, the rolling state only removes the
	// per-tick re-sorts behind the order statistics).
	BatchDetectsPerSec  float64 `json:"batch_detects_per_sec"`
	StreamDetectsPerSec float64 `json:"stream_detects_per_sec"`
	DetectSpeedup       float64 `json:"detect_speedup"`

	Identical bool `json:"identical"`
}

// incrementalRecord draws one synthetic record for the streaming-tick
// benchmark: a bounded template universe so groups repeat and stay dirty
// only when actually appended to.
func incrementalRecord(rng *rand.Rand, sec int, templates int) dbsim.LogRecord {
	tpl := rng.Intn(templates)
	return dbsim.LogRecord{
		TemplateID:   fmt.Sprintf("BT%03d", tpl),
		SQL:          fmt.Sprintf("SELECT %d FROM bench", tpl),
		Table:        "bench",
		Kind:         dbsim.KindSelect,
		ArrivalMs:    int64(sec)*1000 + int64(rng.Intn(1000)),
		ResponseMs:   float64(rng.Intn(400))/4 + 1,
		ExaminedRows: int64(rng.Intn(2000)),
	}
}

// sameFrameBits compares two frames on every consumer-visible bit.
func sameFrameBits(a, b *window.Frame) bool {
	if a.Topic != b.Topic || a.StartMs != b.StartMs || a.Seconds != b.Seconds ||
		len(a.Templates) != len(b.Templates) || len(a.Off) != len(b.Off) ||
		len(a.Arrival) != len(b.Arrival) || len(a.ByID) != len(b.ByID) {
		return false
	}
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	for i := range a.Templates {
		ta, tb := &a.Templates[i], &b.Templates[i]
		if ta.Meta != tb.Meta || !eq(ta.Count, tb.Count) || !eq(ta.SumRT, tb.SumRT) ||
			!eq(ta.SumRows, tb.SumRows) || !eq(ta.Throttled, tb.Throttled) {
			return false
		}
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			return false
		}
	}
	for i := range a.Arrival {
		if a.Arrival[i] != b.Arrival[i] {
			return false
		}
	}
	if !eq(a.Response, b.Response) {
		return false
	}
	for i := range a.ByID {
		if a.ByID[i] != b.ByID[i] {
			return false
		}
	}
	return eq(a.ActiveSession, b.ActiveSession) && eq(a.AvgSession, b.AvgSession) &&
		eq(a.CPUUsage, b.CPUUsage) && eq(a.IOPSUsage, b.IOPSUsage) &&
		eq(a.MemUsage, b.MemUsage) && eq(a.QPS, b.QPS) &&
		eq(a.RowLockWaits, b.RowLockWaits) && eq(a.MDLWaits, b.MDLWaits)
}

// runIncrementalBench ticks one window second by second: each tick
// ingests that second's records and metric row, closes the window frame
// both ways (incremental and rebuild), runs detection both ways
// (streaming and batch), verifies they agree, and accumulates each
// path's wall clock.
func runIncrementalBench(seed int64, small bool) (*IncrementalBench, error) {
	// The template universe is large relative to the per-tick arrival
	// rate, as in production (an instance carries hundreds of templates,
	// a second touches a few dozen): the rebuild clones every template's
	// series each close, the delta close only the touched ones.
	out := &IncrementalBench{
		Seconds:       300,
		RecordsPerSec: 40,
		Templates:     400,
		SpeedupFloor:  IncrementalSpeedupFloor,
		Identical:     true,
	}
	if small {
		out.Seconds = 120
		out.RecordsPerSec = 25
		out.Templates = 200
	}

	rng := rand.New(rand.NewSource(seed))
	coll := collect.NewCollector("bench-incremental", 0, int64(out.Seconds)*1000, nil, nil)
	stream := anomaly.NewStreamDetector(anomaly.Config{})
	batch := anomaly.NewDetector(anomaly.Config{})
	rules := anomaly.DefaultRules()
	prefixMetrics := func(fr *window.Frame, upto int) map[string]timeseries.Series {
		return map[string]timeseries.Series{
			anomaly.MetricActiveSession: fr.ActiveSession[:upto],
			anomaly.MetricCPUUsage:      fr.CPUUsage[:upto],
			anomaly.MetricIOPSUsage:     fr.IOPSUsage[:upto],
		}
	}

	var incCloseSec, rebCloseSec, incDetSec, rebDetSec float64
	recs := make([]dbsim.LogRecord, out.RecordsPerSec)
	for sec := 0; sec < out.Seconds; sec++ {
		for i := range recs {
			recs[i] = incrementalRecord(rng, sec, out.Templates)
		}
		m := dbsim.SecondMetrics{
			Second:        int64(sec),
			ActiveSession: 20 + 10*math.Sin(float64(sec)/17) + rng.Float64(),
			CPUUsage:      35 + rng.Float64()*5,
			IOPSUsage:     50 + rng.Float64()*8,
			QPS:           out.RecordsPerSec,
		}
		if sec == out.Seconds/2 { // one injected spike so detection has work
			m.ActiveSession += 400
			m.CPUUsage += 60
		}

		// Ingestion is shared state maintenance both paths pay
		// identically, so it stays outside both close timings; the two
		// timed ops build a sealed frame of the same post-ingest state.
		for _, r := range recs {
			coll.Ingest(r)
		}
		coll.IngestMetricsAt([]dbsim.SecondMetrics{m})

		// Incremental close: the delta build patches only the dirty
		// suffix against the previous sealed frame.
		start := time.Now()
		incFrame := coll.Frame()
		incCloseSec += time.Since(start).Seconds()

		// Streaming detection off the rolling state.
		start = time.Now()
		stream.Observe(anomaly.MetricActiveSession, incFrame.ActiveSession[sec])
		stream.Observe(anomaly.MetricCPUUsage, incFrame.CPUUsage[sec])
		stream.Observe(anomaly.MetricIOPSUsage, incFrame.IOPSUsage[sec])
		incPhen := stream.DetectPhenomena(rules)
		incDetSec += time.Since(start).Seconds()

		// Rebuild close over the same state: from-scratch frame (the
		// pre-incremental per-tick cost).
		start = time.Now()
		rebFrame := coll.RebuildFrame()
		rebCloseSec += time.Since(start).Seconds()

		// Batch detection over the same per-tick prefixes.
		start = time.Now()
		rebPhen := batch.DetectPhenomena(prefixMetrics(rebFrame, sec+1), rules)
		rebDetSec += time.Since(start).Seconds()

		// Cross-check, untimed.
		if !sameFrameBits(incFrame, rebFrame) {
			out.Identical = false
			return out, fmt.Errorf("bench: incremental frame diverges from rebuild at tick %d", sec)
		}
		if !reflect.DeepEqual(incPhen, rebPhen) {
			out.Identical = false
			return out, fmt.Errorf("bench: streaming phenomena diverge from batch at tick %d", sec)
		}
	}

	ticks := float64(out.Seconds)
	out.IncrementalWindowsPerSec = ticks / incCloseSec
	out.RebuildWindowsPerSec = ticks / rebCloseSec
	out.Speedup = rebCloseSec / incCloseSec
	out.StreamDetectsPerSec = ticks / incDetSec
	out.BatchDetectsPerSec = ticks / rebDetSec
	out.DetectSpeedup = rebDetSec / incDetSec
	if out.Speedup < out.SpeedupFloor {
		return out, fmt.Errorf("bench: incremental close speedup %.2fx below committed floor %.0fx",
			out.Speedup, out.SpeedupFloor)
	}
	return out, nil
}

// Format renders the incremental-close report.
func (b *IncrementalBench) Format() string {
	return fmt.Sprintf(
		"Incremental close: %d ticks × %d rec/s, %d templates\n"+
			"%-12s | %14s | %14s\n%-12s | %14.1f | %14.1f\n%-12s | %14.1f | %14.1f\n"+
			"close speedup %.1fx (floor %.0fx), detect speedup %.1fx, identical=%v\n",
		b.Seconds, b.RecordsPerSec, b.Templates,
		"path", "closes/sec", "detects/sec",
		"rebuild", b.RebuildWindowsPerSec, b.BatchDetectsPerSec,
		"incremental", b.IncrementalWindowsPerSec, b.StreamDetectsPerSec,
		b.Speedup, b.SpeedupFloor, b.DetectSpeedup, b.Identical)
}
