package bench

import (
	"testing"

	"pinsql/internal/workload"
)

// TestScenarioAccuracyFloors pins per-family accuracy floors on a fixed
// corpus. The floors are set below the calibrated values (spike/poor/storm
// diagnose perfectly; MDL is the known-weak family — the adversarial
// fuzzer's corpus is full of its misses), so genuine regressions fail
// while improvements pass.
func TestScenarioAccuracyFloors(t *testing.T) {
	opt := SmallCorpus(1, 8)
	opt.TraceSec = 600
	opt.AnomalyStartSec = 300
	opt.AnomalyMinDurSec = 120
	opt.AnomalyMaxDurSec = 180
	opt.Workers = 1

	res, err := RunScenarioAccuracy(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Format())
	if res.Cases != 8 {
		t.Fatalf("corpus ran %d cases, want 8", res.Cases)
	}

	floors := []struct {
		kind                workload.AnomalyKind
		detect, rPrec, rRec float64
		hRec, h1            float64
	}{
		{workload.KindBusinessSpike, 0.99, 0.90, 0.99, 0.90, 0.99},
		{workload.KindPoorSQL, 0.99, 0.90, 0.99, 0.90, 0.99},
		{workload.KindLockStorm, 0.99, 0.90, 0.99, 0.50, 0.99},
		// MDL: the DDL statement itself is hard to surface in the R-SQL
		// list (it barely executes); hold the current floor, don't bless
		// further decay.
		{workload.KindMDL, 0.99, 0.05, 0.45, 0.60, 0.45},
	}
	for _, f := range floors {
		row := res.Row(f.kind)
		if row == nil {
			t.Fatalf("no row for %s", f.kind)
		}
		if row.Cases != 2 {
			t.Errorf("%s: %d cases, want 2", f.kind, row.Cases)
		}
		check := func(name string, got, floor float64) {
			if got < floor {
				t.Errorf("%s: %s = %.3f below committed floor %.2f", f.kind, name, got, floor)
			}
		}
		check("detect", row.Detected, f.detect)
		check("r_precision", row.RPrecision, f.rPrec)
		check("r_recall", row.RRecall, f.rRec)
		check("h_recall", row.HRecall, f.hRec)
		check("h@1", row.H1, f.h1)
	}
}
