package bench

import (
	"fmt"
	"strings"

	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/logstore"
	"pinsql/internal/parallel"
	"pinsql/internal/repair"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/workload"
)

// TableIIRow aggregates one optimization-selection strategy.
type TableIIRow struct {
	Strategy  string
	Optimized int
	TresGain  float64 // mean % drop of the statement's mean response time
	RowsGain  float64 // mean % drop of the statement's mean examined rows
}

// TableII is the long-term query-optimization impact study (§VIII-E): the
// average metric gains of optimizing PinSQL-pinpointed R-SQLs versus
// optimizing whatever a slow-SQL detector surfaces.
type TableII struct {
	Rows []TableIIRow
}

// RunTableII generates `count` anomaly cases (alternating poor-SQL and
// lock-storm families, the two where optimization applies), and for each
// measures the gain of optimizing (a) PinSQL's top R-SQL and (b) the
// slow-SQL detector's pick (the template with the highest mean response
// time). The gain is measured by replaying the same deterministic workload
// with the optimization applied and comparing the statement's own mean
// response time and examined rows over the anomaly window.
//
// Each case — its generation, diagnosis, and up-to-four replay
// simulations — is self-contained, so cases fan out over `workers`
// goroutines; gains are accumulated in case order on the calling
// goroutine, keeping the float sums (and thus the table) bit-identical
// for every worker count.
func RunTableII(seed int64, count, workers int) (*TableII, error) {
	if count <= 0 {
		count = 8
	}
	type acc struct {
		n          int
		tres, rows float64
	}
	var rsqlAcc, slowAcc acc

	kinds := []workload.AnomalyKind{workload.KindPoorSQL, workload.KindLockStorm}
	opt := cases.DefaultOptions()
	opt.Seed = seed
	opt.TraceSec = 1500
	opt.AnomalyStartSec = 800
	opt.AnomalyMinDurSec = 300
	opt.AnomalyMaxDurSec = 400
	opt.FillerServices = 1
	opt.FillerSpecs = 4
	opt.HistoryDays = []int{1}

	// caseGain is one case's contribution to the two strategy rows.
	type caseGain struct {
		rsql, slow         bool
		rsqlTres, rsqlRows float64
		slowTres, slowRows float64
	}

	err := parallel.OrderedStream(workers, count,
		func(i int) (caseGain, error) {
			var g caseGain
			kind := kinds[i%len(kinds)]
			lab, err := cases.GenerateOne(opt, int64(i), kind)
			if err != nil {
				return g, err
			}
			as, ae := lab.Case.AS, lab.Case.AE

			// Strategy (a): PinSQL's top R-SQL.
			d := core.DiagnoseFrame(lab.Case, lab.Collector.Frame(), core.DefaultConfig())
			if len(d.RSQLs) > 0 {
				tres, rows, err := optimizationGain(opt, int64(i), kind, d.RSQLs[0].ID, as, ae)
				if err != nil {
					return g, err
				}
				if tres != 0 || rows != 0 {
					g.rsql, g.rsqlTres, g.rsqlRows = true, tres, rows
				}
			}

			// Strategy (b): the slow-SQL detector — highest mean response
			// time among templates with meaningful traffic.
			slowID := slowestTemplate(lab, as, ae)
			if slowID != "" {
				tres, rows, err := optimizationGain(opt, int64(i), kind, slowID, as, ae)
				if err != nil {
					return g, err
				}
				if tres != 0 || rows != 0 {
					g.slow, g.slowTres, g.slowRows = true, tres, rows
				}
			}
			return g, nil
		},
		func(i int, g caseGain) error {
			if g.rsql {
				rsqlAcc.n++
				rsqlAcc.tres += g.rsqlTres
				rsqlAcc.rows += g.rsqlRows
			}
			if g.slow {
				slowAcc.n++
				slowAcc.tres += g.slowTres
				slowAcc.rows += g.slowRows
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	out := &TableII{}
	for _, row := range []struct {
		name string
		a    acc
	}{{"R-SQLs", rsqlAcc}, {"Slow SQLs", slowAcc}} {
		r := TableIIRow{Strategy: row.name, Optimized: row.a.n}
		if row.a.n > 0 {
			r.TresGain = row.a.tres / float64(row.a.n)
			r.RowsGain = row.a.rows / float64(row.a.n)
		}
		out.Rows = append(out.Rows, r)
	}
	return out, nil
}

// slowestTemplate models the slow-SQL detector stream of earlier studies:
// a slow log ranks statements by how many slow executions (RT above the
// long_query_time threshold, 1 s here) they produced in the window. Blocked
// victims, with their high traffic, dominate such logs even though their
// slowness is somebody else's lock.
func slowestTemplate(lab *cases.Labeled, as, ae int) sqltemplate.ID {
	snap := lab.Case.Snapshot
	fromMs := snap.StartMs + int64(as)*1000
	toMs := snap.StartMs + int64(ae)*1000
	slow := make(map[int32]int)
	lab.Collector.Store().ScanFunc(snap.Topic, fromMs, toMs, func(r logstore.Record) bool {
		if r.ResponseMs > 1000 {
			slow[r.TemplateIdx]++
		}
		return true
	})
	var best sqltemplate.ID
	bestN := 0
	for idx, n := range slow {
		if n > bestN || (n == bestN && best != "" && lab.Collector.Registry().At(idx).ID < best) {
			bestN = n
			best = lab.Collector.Registry().At(idx).ID
		}
	}
	return best
}

// optimizationGain replays the case's deterministic workload twice — as-is
// and with the target statement optimized — and returns the percentage
// drops of its mean response time and mean examined rows over [as, ae).
func optimizationGain(opt cases.Options, idx int64, kind workload.AnomalyKind, target sqltemplate.ID, as, ae int) (tresGain, rowsGain float64, err error) {
	before, err := replayCase(opt, idx, kind, target, false)
	if err != nil {
		return 0, 0, err
	}
	after, err := replayCase(opt, idx, kind, target, true)
	if err != nil {
		return 0, 0, err
	}
	bRT, bRows := templateWindowMeans(before, target, as, ae)
	aRT, aRows := templateWindowMeans(after, target, as, ae)
	if bRT <= 0 || bRows <= 0 {
		return 0, 0, nil
	}
	return 100 * (bRT - aRT) / bRT, 100 * (bRows - aRows) / bRows, nil
}

// replayCase regenerates the identical case world and simulation, applying
// the optimizer to the target statement first when optimize is set.
func replayCase(opt cases.Options, idx int64, kind workload.AnomalyKind, target sqltemplate.ID, optimize bool) (*cases.Labeled, error) {
	if !optimize {
		return cases.GenerateOne(opt, idx, kind)
	}
	o := repair.DefaultOptimizer()
	return cases.GenerateOneWith(opt, idx, kind, func(w *workload.World) {
		if spec := w.SpecByID(target); spec != nil {
			spec.ApplyOptimization(o.RowsFactor, o.TimeFactor)
		}
	})
}

func templateWindowMeans(lab *cases.Labeled, id sqltemplate.ID, as, ae int) (meanRT, meanRows float64) {
	ts := lab.Case.Snapshot.Template(id)
	if ts == nil {
		return 0, 0
	}
	n := ts.Count.Slice(as, ae).Sum()
	if n == 0 {
		return 0, 0
	}
	return ts.SumRT.Slice(as, ae).Sum() / n, ts.SumRows.Slice(as, ae).Sum() / n
}

// Format renders the table.
func (t *TableII) Format() string {
	var b strings.Builder
	b.WriteString("Table II: averaged gains of approved query optimizations\n")
	fmt.Fprintf(&b, "%-10s | %10s | %10s | %16s\n", "Strategy", "#Optimized", "tres Gain", "#examined_rows Gain")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s | %10d | %9.2f%% | %15.2f%%\n", r.Strategy, r.Optimized, r.TresGain, r.RowsGain)
	}
	return b.String()
}
