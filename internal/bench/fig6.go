package bench

import (
	"fmt"
	"strings"

	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/rank"
	"pinsql/internal/sqltemplate"
)

// AblationVariant names one Fig. 6 pipeline variant and its configuration.
type AblationVariant struct {
	Name string
	Cfg  core.Config
}

// Fig6Variants returns the paper's ablations: the full system plus each
// component removed in turn.
func Fig6Variants() []AblationVariant {
	mk := func(name string, mod func(*core.Config)) AblationVariant {
		cfg := core.DefaultConfig()
		mod(&cfg)
		return AblationVariant{Name: name, Cfg: cfg}
	}
	return []AblationVariant{
		mk("PinSQL", func(*core.Config) {}),
		mk("w/o Cumulative Threshold", func(c *core.Config) { c.NoCumulativeThreshold = true }),
		mk("w/o Direct Cause SQL Ranking", func(c *core.Config) { c.NoDirectCauseRanking = true }),
		mk("w/o History Trend Verification", func(c *core.Config) { c.NoHistoryVerification = true }),
		mk("w/o Weighted Final Score", func(c *core.Config) { c.NoWeightedFinalScore = true }),
		mk("w/o Estimate Session", func(c *core.Config) { c.NoEstimateSession = true }),
		mk("w/o Scale-level Score", func(c *core.Config) { c.NoScaleLevel = true }),
		mk("w/o Trend-level Score", func(c *core.Config) { c.NoTrendLevel = true }),
		mk("w/o Scale-trend-level Score", func(c *core.Config) { c.NoScaleTrendLevel = true }),
	}
}

// Fig6Row is one variant's evaluation.
type Fig6Row struct {
	Variant string
	R       rank.Eval
	H       rank.Eval
}

// Fig6 is the ablation study result.
type Fig6 struct {
	Rows  []Fig6Row
	Cases int
}

// RunFig6 evaluates every ablation variant over one shared corpus.
func RunFig6(opt cases.Options) (*Fig6, error) {
	variants := Fig6Variants()
	rRank := make([][][]sqltemplate.ID, len(variants))
	hRank := make([][][]sqltemplate.ID, len(variants))
	var rTruth, hTruth []map[sqltemplate.ID]bool

	err := cases.Stream(opt, func(lab *cases.Labeled) error {
		rTruth = append(rTruth, lab.RSQLs)
		hTruth = append(hTruth, lab.HSQLs)
		fr := lab.Collector.Frame()
		for i, v := range variants {
			d := core.DiagnoseFrame(lab.Case, fr, v.Cfg)
			rRank[i] = append(rRank[i], d.RSQLIDs())
			hRank[i] = append(hRank[i], d.HSQLIDs())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Fig6{Cases: len(rTruth)}
	for i, v := range variants {
		out.Rows = append(out.Rows, Fig6Row{
			Variant: v.Name,
			R:       rank.Evaluate(rRank[i], rTruth),
			H:       rank.Evaluate(hRank[i], hTruth),
		})
	}
	return out, nil
}

// Format renders both panels of Fig. 6 as text.
func (f *Fig6) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: ablation study (%d cases)\n", f.Cases)
	fmt.Fprintf(&b, "%-32s | %6s %6s %6s | %6s %6s %6s\n",
		"Variant", "R-H@1", "R-H@5", "R-MRR", "H-H@1", "H-H@5", "H-MRR")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-32s | %6.1f %6.1f %6.2f | %6.1f %6.1f %6.2f\n",
			r.Variant, 100*r.R.H1, 100*r.R.H5, r.R.MRR, 100*r.H.H1, 100*r.H.H5, r.H.MRR)
	}
	return b.String()
}
