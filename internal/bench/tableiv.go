package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"pinsql/internal/dbsim"
)

// StressMix selects the closed-loop workload composition of Table IV.
type StressMix int

// Table IV workload mixes.
const (
	ReadOnly StressMix = iota
	ReadWrite
	WriteOnly
)

// String names the mix like the paper's column headers.
func (m StressMix) String() string {
	switch m {
	case ReadOnly:
		return "Read Only"
	case ReadWrite:
		return "Read Write"
	case WriteOnly:
		return "Write Only"
	}
	return "unknown"
}

// TableIVCell is one (config, mix) measurement.
type TableIVCell struct {
	QPS     float64
	Decline float64 // percent vs the normal config
}

// TableIV is the Performance Schema overhead study (§VIII-F): QPS and QPS
// decline rate under monitoring configurations, measured with a 32-thread
// closed-loop stress test on a 4-core instance with 20 tables × 10 M rows,
// run until the CPU is the bottleneck.
type TableIV struct {
	Configs []dbsim.PerfSchemaConfig
	Mixes   []StressMix
	Cells   map[dbsim.PerfSchemaConfig]map[StressMix]TableIVCell
}

// StressOptions tunes the Table IV stress driver.
type StressOptions struct {
	Threads     int     // default 32 (the paper's concurrency)
	Cores       int     // default 4
	Tables      int     // default 20
	RowsPer     int64   // default 10M
	DurationSec int     // default 20 simulated seconds per cell
	ReadMs      float64 // read service demand; default 0.1 ms
	WriteMs     float64 // write service demand; default 0.14 ms
	Seed        int64
}

func (o StressOptions) withDefaults() StressOptions {
	if o.Threads <= 0 {
		o.Threads = 32
	}
	if o.Cores <= 0 {
		o.Cores = 4
	}
	if o.Tables <= 0 {
		o.Tables = 20
	}
	if o.RowsPer <= 0 {
		o.RowsPer = 10_000_000
	}
	if o.DurationSec <= 0 {
		o.DurationSec = 20
	}
	if o.ReadMs <= 0 {
		o.ReadMs = 0.1
	}
	if o.WriteMs <= 0 {
		o.WriteMs = 0.14
	}
	return o
}

// RunTableIV measures every config × mix cell.
func RunTableIV(opt StressOptions) (*TableIV, error) {
	opt = opt.withDefaults()
	out := &TableIV{
		Configs: []dbsim.PerfSchemaConfig{
			dbsim.PerfSchemaOff, dbsim.PerfSchemaOn, dbsim.PerfSchemaIns,
			dbsim.PerfSchemaCon, dbsim.PerfSchemaConIns,
		},
		Mixes: []StressMix{ReadOnly, ReadWrite, WriteOnly},
		Cells: make(map[dbsim.PerfSchemaConfig]map[StressMix]TableIVCell),
	}
	for _, cfg := range out.Configs {
		out.Cells[cfg] = make(map[StressMix]TableIVCell)
	}

	for _, mix := range out.Mixes {
		var normalQPS float64
		for _, cfg := range out.Configs {
			qps, err := stressQPS(opt, cfg, mix)
			if err != nil {
				return nil, err
			}
			cell := TableIVCell{QPS: qps}
			if cfg == dbsim.PerfSchemaOff {
				normalQPS = qps
			} else if normalQPS > 0 {
				cell.Decline = 100 * (normalQPS - qps) / normalQPS
			}
			out.Cells[cfg][mix] = cell
		}
	}
	return out, nil
}

// stressQPS runs one closed-loop stress cell and returns the steady QPS.
func stressQPS(opt StressOptions, pfs dbsim.PerfSchemaConfig, mix StressMix) (float64, error) {
	cfg := dbsim.DefaultConfig()
	cfg.Cores = opt.Cores
	cfg.Seed = opt.Seed + int64(pfs)*31 + int64(mix)*7
	inst := dbsim.NewInstance(cfg)
	inst.SetPerfSchema(pfs)
	for i := 0; i < opt.Tables; i++ {
		inst.CreateTable(fmt.Sprintf("sbtest%d", i+1), opt.RowsPer)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	mkQuery := func(now int64) *dbsim.Query {
		table := fmt.Sprintf("sbtest%d", rng.Intn(opt.Tables)+1)
		isWrite := false
		switch mix {
		case ReadWrite:
			isWrite = rng.Float64() < 0.3
		case WriteOnly:
			isWrite = true
		}
		if isWrite {
			return &dbsim.Query{
				TemplateID: "STRESS-W", SQL: "UPDATE " + table + " SET k = k + 1 WHERE id = ?",
				Table: table, Kind: dbsim.KindUpdate, ArrivalMs: now,
				ServiceMs: opt.WriteMs, ExaminedRows: 1, IOOps: 0.5,
				// Point updates over 10M rows: collisions negligible.
				LockKeys: []int{rng.Intn(1_000_000)},
			}
		}
		return &dbsim.Query{
			TemplateID: "STRESS-R", SQL: "SELECT c FROM " + table + " WHERE id = ?",
			Table: table, Kind: dbsim.KindSelect, ArrivalMs: now,
			ServiceMs: opt.ReadMs, ExaminedRows: 1, IOOps: 0.2,
		}
	}

	initial := make([]*dbsim.Query, opt.Threads)
	for i := range initial {
		initial[i] = mkQuery(0)
	}
	endMs := int64(opt.DurationSec) * 1000
	var completed int64
	secs, err := inst.Run(dbsim.RunOptions{
		StartMs: 0,
		EndMs:   endMs,
		Source:  dbsim.NewSliceSource(initial),
		OnComplete: func(fin *dbsim.Query, now int64) *dbsim.Query {
			completed++
			return mkQuery(now)
		},
	})
	if err != nil {
		return 0, err
	}
	// Skip the first two warm-up seconds when computing steady QPS.
	var qps float64
	n := 0
	for i, s := range secs {
		if i < 2 {
			continue
		}
		qps += float64(s.QPS)
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return qps / float64(n), nil
}

// Format renders the table in the paper's layout.
func (t *TableIV) Format() string {
	var b strings.Builder
	b.WriteString("Table IV: QPS and QPS decline rate under Performance Schema configs\n")
	fmt.Fprintf(&b, "%-12s", "Config")
	for _, mix := range t.Mixes {
		fmt.Fprintf(&b, " | %10s %7s", mix, "↓QPS")
	}
	b.WriteByte('\n')
	for _, cfg := range t.Configs {
		fmt.Fprintf(&b, "%-12s", cfg)
		for _, mix := range t.Mixes {
			cell := t.Cells[cfg][mix]
			fmt.Fprintf(&b, " | %10.0f %6.2f%%", cell.QPS, cell.Decline)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
