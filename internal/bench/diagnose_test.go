package bench

import (
	"strings"
	"testing"
)

func TestRunDiagnoseBenchSmall(t *testing.T) {
	res, err := RunDiagnoseBench(DiagnoseBenchOptions{Seed: 3, Small: true, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("frame and legacy diagnoses diverged")
	}
	if res.Cases != 4 || res.Rounds != 1 {
		t.Errorf("corpus shape = %d cases × %d rounds", res.Cases, res.Rounds)
	}
	if res.FrameWindowsPerSec <= 0 || res.LegacyWindowsPerSec <= 0 {
		t.Errorf("rates = %g / %g", res.LegacyWindowsPerSec, res.FrameWindowsPerSec)
	}
	// The alloc win is structural (no per-window map materialization), so
	// even a single noisy CI round must show a clear gap; wall-clock
	// speedup is asserted only loosely for the same reason.
	if res.AllocRatio < 2 {
		t.Errorf("alloc ratio = %.1f, expected the frame path to allocate far less", res.AllocRatio)
	}
	out := res.Format()
	for _, want := range []string{"windows/sec", "allocs/op", "identical=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
