package bench

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"pinsql/internal/cases"
	"pinsql/internal/collect"
	"pinsql/internal/dbsim"
	"pinsql/internal/parallel"
)

// GenBenchOptions configures the generation/collection fast-path benchmark.
type GenBenchOptions struct {
	Seed    int64
	Cases   int  // corpus size for the generation timing; 0 → 6
	Workers int  // parallel worker count; 0 → GOMAXPROCS
	Small   bool // reduced trace lengths (CI-sized)
}

// GenBench reports the substrate fast path: parallel case generation
// against the sequential baseline (with an output-equivalence check), the
// dbsim event-loop microbenchmark, and the collect interning cache.
// It is the document behind BENCH_gen.json.
type GenBench struct {
	// Case generation.
	Workers    int     `json:"workers"`
	Cases      int     `json:"cases"`
	SeqSec     float64 `json:"seq_sec"`      // sequential corpus wall-clock
	ParSec     float64 `json:"par_sec"`      // parallel corpus wall-clock
	Speedup    float64 `json:"speedup"`      // SeqSec / ParSec
	SeqSimsSec float64 `json:"seq_sims_sec"` // case simulations per second
	ParSimsSec float64 `json:"par_sims_sec"`
	Identical  bool    `json:"identical"` // parallel corpus == sequential corpus

	// dbsim event loop (warm instance, mixed contended workload).
	Events         int64   `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`

	// collect interning cache (raw SQL → template, normalization skipped).
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	NsPerIntern   float64 `json:"ns_per_intern"`         // cache enabled
	NsPerInternNC float64 `json:"ns_per_intern_nocache"` // cache disabled
	InternSpeedup float64 `json:"intern_speedup"`
}

// genCorpusOptions is the corpus the generation benchmark times.
func genCorpusOptions(opt GenBenchOptions) cases.Options {
	o := cases.DefaultOptions()
	o.Seed = opt.Seed
	o.Count = opt.Cases
	o.TraceSec = 1200
	o.AnomalyStartSec = 700
	o.AnomalyMinDurSec = 180
	o.AnomalyMaxDurSec = 300
	o.FillerServices = 2
	o.FillerSpecs = 5
	o.HistoryDays = []int{1}
	if opt.Small {
		o.TraceSec = 480
		o.AnomalyStartSec = 240
		o.AnomalyMinDurSec = 90
		o.AnomalyMaxDurSec = 150
		o.FillerServices = 1
		o.FillerSpecs = 3
	}
	return o
}

// caseDigest folds every report-visible field of a generated case into a
// hash, so two corpora can be compared without holding both in memory.
func caseDigest(h io.Writer, lab *cases.Labeled) {
	fmt.Fprintf(h, "%s|%s|%v|%d|%d\n", lab.Name, lab.Kind, lab.Detected, lab.Case.AS, lab.Case.AE)
	for _, v := range lab.Case.Snapshot.ActiveSession {
		fmt.Fprintf(h, "%.17g ", v)
	}
	for _, ts := range lab.Case.Snapshot.Templates {
		fmt.Fprintf(h, "\n%s|%s", ts.Meta.ID, ts.Meta.Text)
		for i := range ts.Count {
			fmt.Fprintf(h, "|%.17g %.17g %.17g", ts.Count[i], ts.SumRT[i], ts.SumRows[i])
		}
	}
	ids := make([]string, 0, len(lab.RSQLs)+len(lab.HSQLs))
	for id := range lab.RSQLs {
		ids = append(ids, "R"+string(id))
	}
	for id := range lab.HSQLs {
		ids = append(ids, "H"+string(id))
	}
	sort.Strings(ids)
	fmt.Fprintf(h, "\n%v\n", ids)
}

func corpusHash(opt cases.Options) (string, time.Duration, error) {
	h := sha256.New()
	start := time.Now()
	err := cases.Stream(opt, func(lab *cases.Labeled) error {
		caseDigest(h, lab)
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return "", 0, err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), elapsed, nil
}

// genEventWorkload mirrors the dbsim microbenchmark workload: mixed point
// reads, narrow and wide lock-taking updates, and rare DDL on a contended
// 2-core instance.
func genEventWorkload(seed int64, n int) []*dbsim.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*dbsim.Query, 0, n)
	var t int64
	for i := 0; i < n; i++ {
		t += rng.Int63n(8)
		q := &dbsim.Query{
			TemplateID: "T", SQL: "x", Table: "sales",
			Kind: dbsim.KindSelect, ArrivalMs: t,
			ServiceMs: 0.5 + rng.Float64()*40, ExaminedRows: int64(rng.Intn(100)), IOOps: rng.Float64(),
		}
		switch rng.Intn(5) {
		case 0:
			q.Kind = dbsim.KindUpdate
			q.LockKeys = []int{rng.Intn(8)}
		case 1:
			q.Kind = dbsim.KindUpdate
			q.LockKeys = []int{rng.Intn(8), 8 + rng.Intn(8)}
		}
		qs = append(qs, q)
	}
	return qs
}

// measureEventLoop runs the dbsim microbenchmark on a warm instance and
// fills the event-loop section of the report.
func (g *GenBench) measureEventLoop(seed int64) error {
	cfg := dbsim.DefaultConfig()
	cfg.Cores = 2
	cfg.LockWaitTimeoutMs = 2000
	in := dbsim.NewInstance(cfg)
	in.CreateTable("sales", 1_000_000)

	const nq = 5000
	qs := genEventWorkload(seed, nq)
	var events int64
	run := func() error {
		_, err := in.Run(dbsim.RunOptions{
			StartMs: 0, EndMs: 60_000,
			Source: dbsim.NewSliceSource(qs),
			Sink:   func(dbsim.LogRecord) { events++ },
		})
		return err
	}
	if err := run(); err != nil { // warm the engine scratch
		return err
	}
	events = 0

	const rounds = 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := run(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	g.Events = events
	if events > 0 {
		g.NsPerEvent = float64(elapsed.Nanoseconds()) / float64(events)
		g.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		g.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
		g.EventsPerSec = float64(events) / elapsed.Seconds()
	}
	return nil
}

// measureInternCache drives a repeated-statement record stream through a
// cache-enabled and a cache-disabled registry and fills the cache section.
func (g *GenBench) measureInternCache(seed int64) {
	const n = 200_000
	rng := rand.New(rand.NewSource(seed))
	hot := make([]string, 40)
	for i := range hot {
		hot[i] = fmt.Sprintf("SELECT c%d FROM orders WHERE id = %d AND status = 'open'", i%7, i)
	}
	recs := make([]dbsim.LogRecord, n)
	for i := range recs {
		if rng.Intn(10) == 0 { // 10 % fresh literals, 90 % repeats
			recs[i] = dbsim.LogRecord{SQL: fmt.Sprintf("SELECT c FROM orders WHERE id = %d", rng.Int())}
		} else {
			recs[i] = dbsim.LogRecord{SQL: hot[rng.Intn(len(hot))]}
		}
	}

	timeIntern := func(r *collect.Registry) float64 {
		start := time.Now()
		for i := range recs {
			r.Intern(recs[i])
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}

	cached := collect.NewRegistry()
	g.NsPerIntern = timeIntern(cached)
	g.CacheHits, g.CacheMisses, _ = cached.RawCacheStats()
	if total := g.CacheHits + g.CacheMisses; total > 0 {
		g.CacheHitRate = float64(g.CacheHits) / float64(total)
	}

	uncached := collect.NewRegistry()
	uncached.SetRawCacheCap(0)
	g.NsPerInternNC = timeIntern(uncached)
	if g.NsPerIntern > 0 {
		g.InternSpeedup = g.NsPerInternNC / g.NsPerIntern
	}
}

// RunGenBench benchmarks the generation/collection fast path: it generates
// the same corpus sequentially and with the worker pool (erroring if the
// two corpora are not identical — the determinism contract is part of the
// benchmark's pass criteria), then measures the dbsim event loop and the
// interning cache.
func RunGenBench(opt GenBenchOptions) (*GenBench, error) {
	if opt.Cases <= 0 {
		opt.Cases = 6
	}
	g := &GenBench{
		Workers: parallel.Resolve(opt.Workers),
		Cases:   opt.Cases,
	}

	seqOpt := genCorpusOptions(opt)
	seqOpt.Workers = 1
	seqHash, seqElapsed, err := corpusHash(seqOpt)
	if err != nil {
		return nil, fmt.Errorf("sequential generation: %w", err)
	}
	parOpt := genCorpusOptions(opt)
	parOpt.Workers = g.Workers
	parHash, parElapsed, err := corpusHash(parOpt)
	if err != nil {
		return nil, fmt.Errorf("parallel generation: %w", err)
	}

	g.SeqSec = seqElapsed.Seconds()
	g.ParSec = parElapsed.Seconds()
	if g.ParSec > 0 {
		g.Speedup = g.SeqSec / g.ParSec
	}
	g.SeqSimsSec = float64(opt.Cases) / g.SeqSec
	g.ParSimsSec = float64(opt.Cases) / g.ParSec
	g.Identical = seqHash == parHash
	if !g.Identical {
		return nil, fmt.Errorf("bench: parallel corpus (workers=%d) diverged from sequential corpus: %s != %s",
			g.Workers, parHash, seqHash)
	}

	if err := g.measureEventLoop(opt.Seed + 1); err != nil {
		return nil, err
	}
	g.measureInternCache(opt.Seed + 2)
	return g, nil
}

// Format renders the report.
func (g *GenBench) Format() string {
	var b strings.Builder
	b.WriteString("Generation/collection fast path\n")
	fmt.Fprintf(&b, "case generation (%d cases): seq %.2fs (%.2f sims/s)  par[%d workers] %.2fs (%.2f sims/s)  speedup %.2fx  identical=%v\n",
		g.Cases, g.SeqSec, g.SeqSimsSec, g.Workers, g.ParSec, g.ParSimsSec, g.Speedup, g.Identical)
	fmt.Fprintf(&b, "dbsim event loop: %d events  %.0f ns/event  %.4f allocs/event  %.1f B/event  %.2fM events/s\n",
		g.Events, g.NsPerEvent, g.AllocsPerEvent, g.BytesPerEvent, g.EventsPerSec/1e6)
	fmt.Fprintf(&b, "intern cache: %.1f%% hit rate (%d hits / %d misses)  %.0f ns/intern cached vs %.0f uncached (%.2fx)\n",
		100*g.CacheHitRate, g.CacheHits, g.CacheMisses, g.NsPerIntern, g.NsPerInternNC, g.InternSpeedup)
	return b.String()
}
