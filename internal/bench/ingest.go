package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pinsql/internal/fleet"
	"pinsql/internal/ingest"
)

// IngestBenchOptions configures the trace-replay benchmark.
type IngestBenchOptions struct {
	// Path is the trace file to replay; empty selects the committed
	// example recording (resolved against the repo root).
	Path string

	// Format is the trace format, "" to guess from the name.
	Format string

	// WindowSec is the monitoring window length. Default 120.
	WindowSec int
}

// IngestBench is the document behind BENCH_ingest.json: parse throughput
// of the raw adapter stack, end-to-end monitoring throughput of the same
// trace through the fleet, and a determinism verdict from replaying the
// pipeline twice.
type IngestBench struct {
	Path      string `json:"path"`
	WindowSec int    `json:"window_sec"`

	// Parse-only pass: the adapter stack drained with no pipeline.
	Records            int64   `json:"records"`
	ParseErrors        int64   `json:"parse_errors"`
	ParseErrorRate     float64 `json:"parse_error_rate"`
	TraceSeconds       int64   `json:"trace_seconds"`
	ParseWallSec       float64 `json:"parse_wall_sec"`
	ParseRecordsPerSec float64 `json:"parse_records_per_sec"`

	// Full-pipeline pass (run twice; timings from the first).
	Windows        int     `json:"windows"`
	Anomalies      int     `json:"anomalies"`
	ReplayWallSec  float64 `json:"replay_wall_sec"`
	WindowsPerSec  float64 `json:"windows_per_sec"`
	SpeedupVsTrace float64 `json:"speedup_vs_trace"` // trace seconds / replay wall seconds

	// Identical is the determinism verdict: both full-pipeline replays
	// produced byte-identical fleet reports.
	Identical bool `json:"identical"`
}

// RunIngestBench replays a recorded trace through the full pipeline and
// measures the ingestion path. The pipeline pass runs twice; a report
// mismatch is reported in Identical (the caller decides whether that is
// fatal) — determinism is part of the ingest contract, same as the
// simulator's.
func RunIngestBench(opt IngestBenchOptions) (*IngestBench, error) {
	if opt.Path == "" {
		opt.Path = "examples/ingest/orders-slow.log.gz"
	}
	if opt.WindowSec <= 0 {
		opt.WindowSec = 120
	}
	out := &IngestBench{Path: opt.Path, WindowSec: opt.WindowSec}

	// Pass 1: raw adapter throughput, no pipeline behind it.
	src, err := ingest.Open(opt.Path, opt.Format, ingest.OpenOptions{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			src.Close()
			return nil, err
		}
		out.Records += int64(len(b.Records))
		out.TraceSeconds++
	}
	out.ParseWallSec = time.Since(start).Seconds()
	if c, ok := src.(ingest.Counting); ok {
		st := c.Stats()
		out.ParseErrors = st.ParseErrors
		if total := st.Records + st.ParseErrors; total > 0 {
			out.ParseErrorRate = float64(st.ParseErrors) / float64(total)
		}
	}
	if out.ParseWallSec > 0 {
		out.ParseRecordsPerSec = float64(out.Records) / out.ParseWallSec
	}
	if err := src.Close(); err != nil {
		return nil, err
	}

	// Pass 2 and 3: the full pipeline, twice, compared byte for byte.
	report1, err := replayOnce(opt, out)
	if err != nil {
		return nil, err
	}
	saveWall, saveWindows, saveAnomalies := out.ReplayWallSec, out.Windows, out.Anomalies
	report2, err := replayOnce(opt, out)
	if err != nil {
		return nil, err
	}
	out.ReplayWallSec, out.Windows, out.Anomalies = saveWall, saveWindows, saveAnomalies
	out.Identical = report1 == report2
	if out.ReplayWallSec > 0 {
		out.WindowsPerSec = float64(out.Windows) / out.ReplayWallSec
		out.SpeedupVsTrace = float64(out.TraceSeconds) / out.ReplayWallSec
	}
	return out, nil
}

// replayOnce monitors the trace through a one-instance fleet and returns
// the final report text.
func replayOnce(opt IngestBenchOptions, out *IngestBench) (string, error) {
	spec := fleet.TraceSpec("bench-ingest", opt.WindowSec, func() (ingest.Source, error) {
		return ingest.Open(opt.Path, opt.Format, ingest.OpenOptions{})
	})
	f, err := fleet.New([]fleet.InstanceSpec{spec}, fleet.Options{Workers: 2})
	if err != nil {
		return "", err
	}
	start := time.Now()
	f.Start()
	if err := f.Wait(); err != nil {
		f.Close()
		return "", err
	}
	out.ReplayWallSec = time.Since(start).Seconds()
	report := f.Report()
	out.Windows = 0
	out.Anomalies = 0
	for _, is := range f.Status().Instances {
		out.Windows += is.Committed
	}
	out.Anomalies = strings.Count(report, " anomaly ")
	if err := f.Close(); err != nil {
		return "", err
	}
	return report, nil
}

// Format renders the benchmark as a human-readable block.
func (b *IngestBench) Format() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Ingest replay bench: %s (%ds windows)\n", b.Path, b.WindowSec)
	fmt.Fprintf(&s, "  parse:  %d records over %ds of trace, %d malformed (%.2f%%), %.0f rec/s\n",
		b.Records, b.TraceSeconds, b.ParseErrors, b.ParseErrorRate*100, b.ParseRecordsPerSec)
	fmt.Fprintf(&s, "  replay: %d windows, %d anomalies, %.2fs wall (%.1f win/s, %.0fx trace time)\n",
		b.Windows, b.Anomalies, b.ReplayWallSec, b.WindowsPerSec, b.SpeedupVsTrace)
	fmt.Fprintf(&s, "  deterministic: %v\n", b.Identical)
	return s.String()
}
