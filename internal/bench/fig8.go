package bench

import (
	"fmt"
	"strings"

	"pinsql/internal/anomaly"
	"pinsql/internal/collect"
	"pinsql/internal/core"
	"pinsql/internal/dbsim"
	"pinsql/internal/rank"
	"pinsql/internal/repair"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/workload"
)

// Fig8Event marks one timeline event of the repair case study.
type Fig8Event struct {
	Sec   int
	Label string
}

// Fig8 reproduces the real-world repair case (§VIII-E): an anomaly appears,
// the user manually throttles the Top-RT statement (partial relief),
// removes the throttle (anomaly returns), then enables PinSQL, which
// pinpoints the true R-SQL and repairs it for good.
type Fig8 struct {
	ActiveSession []float64
	CPUUsage      []float64
	IOPSUsage     []float64
	Events        []Fig8Event

	ThrottledTemplate sqltemplate.ID   // the user's manual Top-RT pick
	PinpointedRSQL    sqltemplate.ID   // PinSQL's top diagnosis
	TrueRSQLs         []sqltemplate.ID // ground truth (the job's write statements)
}

// PinpointedCorrect reports whether the top diagnosis is one of the
// injected write statements.
func (f *Fig8) PinpointedCorrect() bool {
	for _, id := range f.TrueRSQLs {
		if id == f.PinpointedRSQL {
			return true
		}
	}
	return false
}

// fig8 phase boundaries in seconds.
const (
	fig8AnomalyStart  = 600
	fig8ManualAction  = 1500
	fig8ThrottleOff   = 2100
	fig8PinSQLEnabled = 2700
	fig8End           = 3600
)

// RunFig8 executes the scripted scenario on one live instance. The anomaly
// is a persistent lock storm, so throttling the most-visible (blocked)
// statement cannot fix it — only acting on the pinpointed UPDATE does.
func RunFig8(seed int64) (*Fig8, error) {
	world := workload.DefaultWorld(seed)
	// The storm job lives in the fulfillment service, whose locking reads
	// on the hot order rows become the visible victims.
	storm := world.InjectLockStorm(world.Services[2], "orders", 7, fig8AnomalyStart*1000, fig8End*1000)

	cfg := dbsim.DefaultConfig()
	cfg.Seed = seed + 1
	inst := dbsim.NewInstance(cfg)
	world.Apply(inst)

	out := &Fig8{TrueRSQLs: storm.RSQLs}
	coll := collect.NewCollector("fig8", 0, fig8End*1000, nil, nil)

	// runPhase advances the world on the same instance over [from, to)
	// seconds and appends the metrics.
	runPhase := func(from, to int) error {
		secs, err := inst.Run(dbsim.RunOptions{
			StartMs: int64(from) * 1000,
			EndMs:   int64(to) * 1000,
			Source:  world.Source(int64(from)*1000, int64(to)*1000, seed+int64(from)),
			Sink:    coll.Sink(),
		})
		if err != nil {
			return err
		}
		coll.IngestMetrics(secs)
		for _, s := range secs {
			out.ActiveSession = append(out.ActiveSession, s.ActiveSession)
			out.CPUUsage = append(out.CPUUsage, s.CPUUsage)
			out.IOPSUsage = append(out.IOPSUsage, s.IOPSUsage)
		}
		return nil
	}

	// Phase 1: healthy baseline, then the anomaly begins and persists.
	if err := runPhase(0, fig8ManualAction); err != nil {
		return nil, err
	}
	out.Events = append(out.Events,
		Fig8Event{fig8AnomalyStart, "anomaly begins (lock storm)"},
		Fig8Event{fig8ManualAction, "user throttles Top-RT SQL"})

	// Phase 2: the user throttles the Top-RT statement — which, because
	// lock-wait time inflates response time, is a blocked victim, not the
	// root cause.
	snapshot := collect.SnapshotOfFrame(coll.Frame())
	topRT := rank.TopSQL(snapshot, fig8AnomalyStart, fig8ManualAction, rank.MethodTopRT)
	out.ThrottledTemplate = topRT[0]
	inst.SetThrottle(string(out.ThrottledTemplate), 2)
	if err := runPhase(fig8ManualAction, fig8ThrottleOff); err != nil {
		return nil, err
	}

	// Phase 3: throttling hurt the business, the user switches it off;
	// the anomaly phenomenon reappears.
	out.Events = append(out.Events, Fig8Event{fig8ThrottleOff, "user removes throttle; anomaly returns"})
	inst.ClearThrottle(string(out.ThrottledTemplate))
	if err := runPhase(fig8ThrottleOff, fig8PinSQLEnabled); err != nil {
		return nil, err
	}

	// Phase 4: the user enables PinSQL: detect, diagnose, repair.
	out.Events = append(out.Events, Fig8Event{fig8PinSQLEnabled, "PinSQL enabled: diagnose + repair R-SQL"})
	fr := coll.Frame()
	snapshot = collect.SnapshotOfFrame(fr)
	ph := fig8Phenomenon(snapshot)
	c := anomaly.NewCase(snapshot, ph)
	d := core.DiagnoseFrame(c, fr, core.DefaultConfig())
	if len(d.RSQLs) > 0 {
		out.PinpointedRSQL = d.RSQLs[0].ID
	}

	// Repair the head of the R-SQL ranking (the job split its writes
	// across statements; acting on the top one alone leaves half the
	// storm running).
	top := d.RSQLIDs()
	if len(top) > 3 {
		top = top[:3]
	}
	mod := repair.New(repair.DefaultConfig(), repair.DefaultOptimizer())
	sugg := mod.Suggest(c, top)
	env := repair.Environment{
		Throttler: inst,
		Scaler:    inst,
		SpecOf: func(id sqltemplate.ID) repair.Optimizable {
			if spec := world.SpecByID(id); spec != nil {
				return spec
			}
			return nil
		},
		AutoExecute: true,
	}
	mod.Execute(env, sugg)

	// Phase 5: recovery.
	if err := runPhase(fig8PinSQLEnabled, fig8End); err != nil {
		return nil, err
	}
	out.Events = append(out.Events, Fig8Event{fig8End, "metrics back to normal"})
	return out, nil
}

// fig8Phenomenon detects the dominant phenomenon overlapping the anomaly,
// falling back to the known window if the detector misses.
func fig8Phenomenon(snap *collect.Snapshot) anomaly.Phenomenon {
	det := anomaly.NewDetector(anomaly.Config{})
	metrics := map[string]timeseries.Series{
		anomaly.MetricActiveSession: snap.ActiveSession,
		anomaly.MetricCPUUsage:      snap.CPUUsage,
		anomaly.MetricIOPSUsage:     snap.IOPSUsage,
	}
	best := anomaly.Phenomenon{
		Rule:  "fallback",
		Start: fig8AnomalyStart,
		End:   fig8PinSQLEnabled,
		Events: []anomaly.Event{{
			Metric:  anomaly.MetricActiveSession,
			Feature: anomaly.SpikeUp,
			Start:   fig8AnomalyStart,
			End:     fig8PinSQLEnabled,
		}},
	}
	bestDur := 0
	for _, p := range det.DetectPhenomena(metrics, anomaly.DefaultRules()) {
		if p.End > fig8AnomalyStart && p.Duration() > bestDur {
			best = p
			bestDur = p.Duration()
		}
	}
	return best
}

// Format renders the timeline summary.
func (f *Fig8) Format() string {
	var b strings.Builder
	b.WriteString("Fig. 8: real-world repair case study (lock storm)\n")
	for _, ev := range f.Events {
		fmt.Fprintf(&b, "  t=%4ds  %s\n", ev.Sec, ev.Label)
	}
	fmt.Fprintf(&b, "  manual Top-RT throttle target: %s (a blocked victim)\n", f.ThrottledTemplate)
	fmt.Fprintf(&b, "  PinSQL pinpointed R-SQL:       %s (truth: %v)\n", f.PinpointedRSQL, f.TrueRSQLs)
	phases := []struct {
		label    string
		from, to int
	}{
		{"baseline", 0, fig8AnomalyStart},
		{"anomaly", fig8AnomalyStart, fig8ManualAction},
		{"manual throttle", fig8ManualAction, fig8ThrottleOff},
		{"throttle off", fig8ThrottleOff, fig8PinSQLEnabled},
		{"after PinSQL repair", fig8PinSQLEnabled, fig8End},
	}
	for _, p := range phases {
		fmt.Fprintf(&b, "  %-20s mean active session %7.2f  cpu %5.1f%%\n",
			p.label, meanOf(f.ActiveSession, p.from, p.to), meanOf(f.CPUUsage, p.from, p.to))
	}
	return b.String()
}

func meanOf(s []float64, from, to int) float64 {
	if to > len(s) {
		to = len(s)
	}
	if from >= to {
		return 0
	}
	var sum float64
	for _, v := range s[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}
