package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/logstore"
	"pinsql/internal/session"
	"pinsql/internal/window"
	"pinsql/internal/workload"
)

// DiagnoseBenchOptions configures the frame-vs-legacy diagnosis benchmark.
type DiagnoseBenchOptions struct {
	Seed    int64
	Workers int // diagnosis Workers knob; 0 → GOMAXPROCS
	Rounds  int // diagnosis repetitions per case; 0 → 8 (4 when Small)
	Small   bool
}

// DiagnoseBench compares the warm diagnosis path on the columnar window
// frame (core.DiagnoseFrame) against the legacy map-keyed path
// (session.Queries materialization + core.Diagnose) over one mixed corpus.
// Both paths diagnose the same cases and must produce identical rankings —
// Identical is the determinism check the CI smoke gates on. It is the
// document behind BENCH_diagnose.json.
//
// The legacy loop reproduces the pre-refactor per-window cost exactly:
// re-scan the collector's log store into a freshly allocated map-keyed
// query table (what cases.QueriesOf did before it became a frame shim),
// then diagnose through the map. The frame loop diagnoses straight off
// the collector's cached columnar frame.
type DiagnoseBench struct {
	Workers int `json:"workers"`
	Cases   int `json:"cases"`
	Rounds  int `json:"rounds"`

	LegacyWindowsPerSec float64 `json:"legacy_windows_per_sec"`
	FrameWindowsPerSec  float64 `json:"frame_windows_per_sec"`
	Speedup             float64 `json:"speedup"`

	LegacyAllocsPerOp float64 `json:"legacy_allocs_per_op"`
	FrameAllocsPerOp  float64 `json:"frame_allocs_per_op"`
	AllocRatio        float64 `json:"alloc_ratio"` // legacy / frame

	LegacyBytesPerOp float64 `json:"legacy_bytes_per_op"`
	FrameBytesPerOp  float64 `json:"frame_bytes_per_op"`
	ByteRatio        float64 `json:"byte_ratio"` // legacy / frame

	Identical bool `json:"identical"`

	// Incremental is the per-tick incremental-vs-rebuild close comparison
	// (delta frame build + streaming detection against from-scratch frame
	// build + batch detection). Its Identical flag and SpeedupFloor gate
	// the same CI smoke this document feeds.
	Incremental *IncrementalBench `json:"incremental"`
}

// diagnoseBenchCorpus is the fixed four-family workload the benchmark
// diagnoses (one case per anomaly family).
func diagnoseBenchCorpus(opt DiagnoseBenchOptions) ([]*cases.Labeled, error) {
	o := genCorpusOptions(GenBenchOptions{Seed: opt.Seed, Small: opt.Small})
	kinds := []workload.AnomalyKind{
		workload.KindBusinessSpike, workload.KindPoorSQL,
		workload.KindLockStorm, workload.KindMDL,
	}
	labs := make([]*cases.Labeled, 0, len(kinds))
	for i, kind := range kinds {
		lab, err := cases.GenerateOne(o, opt.Seed+int64(i), kind)
		if err != nil {
			return nil, err
		}
		labs = append(labs, lab)
	}
	return labs, nil
}

// measureLoop times fn over rounds*len(labs) operations and reports
// wall-clock seconds plus exact allocation deltas (runtime.MemStats.Mallocs
// and TotalAlloc are cumulative across all goroutines, so the parallel
// pipeline's allocations are counted too).
func measureLoop(rounds int, labs []*cases.Labeled, fn func(lab *cases.Labeled)) (sec, allocsPerOp, bytesPerOp float64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, lab := range labs {
			fn(lab)
		}
	}
	sec = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	ops := float64(rounds * len(labs))
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / ops
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / ops
	return sec, allocsPerOp, bytesPerOp
}

// legacyQueries rebuilds the estimator's map-keyed input the way the
// pre-refactor cases.QueriesOf did: stream the collector's log store range
// into a fresh map. This is the per-window work the frame representation
// eliminates.
func legacyQueries(lab *cases.Labeled) session.Queries {
	snap := lab.Case.Snapshot
	out := make(session.Queries)
	reg := lab.Collector.Registry()
	lab.Collector.Store().ScanFunc(snap.Topic, snap.StartMs, snap.StartMs+int64(snap.Seconds)*1000,
		func(r logstore.Record) bool {
			id := reg.At(r.TemplateIdx).ID
			out[id] = append(out[id], session.Obs{ArrivalMs: r.ArrivalMs, ResponseMs: r.ResponseMs})
			return true
		})
	return out
}

// sameDiagnosis reports whether a legacy and a frame diagnosis agree on
// every ranking-visible bit: H-SQL order, IDs and score components
// (ignoring the frame-only Pos field), and R-SQL order, IDs, scores,
// cluster assignment and verification verdicts.
func sameDiagnosis(legacy, frame *core.Diagnosis) bool {
	if len(legacy.HSQLs) != len(frame.HSQLs) || len(legacy.RSQLs) != len(frame.RSQLs) {
		return false
	}
	for i, l := range legacy.HSQLs {
		f := frame.HSQLs[i]
		if l.ID != f.ID ||
			math.Float64bits(l.Trend) != math.Float64bits(f.Trend) ||
			math.Float64bits(l.Scale) != math.Float64bits(f.Scale) ||
			math.Float64bits(l.ScaleTrend) != math.Float64bits(f.ScaleTrend) ||
			math.Float64bits(l.Impact) != math.Float64bits(f.Impact) {
			return false
		}
	}
	for i, l := range legacy.RSQLs {
		f := frame.RSQLs[i]
		if l.ID != f.ID || l.Cluster != f.Cluster || l.Verified != f.Verified ||
			math.Float64bits(l.Score) != math.Float64bits(f.Score) {
			return false
		}
	}
	return true
}

// RunDiagnoseBench measures the warm per-window diagnosis rate and
// allocation profile of the frame path against the legacy map-keyed path,
// and cross-checks that both produce bit-identical rankings on every case.
func RunDiagnoseBench(opt DiagnoseBenchOptions) (*DiagnoseBench, error) {
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 8
		if opt.Small {
			rounds = 4
		}
	}
	labs, err := diagnoseBenchCorpus(opt)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Workers = opt.Workers

	out := &DiagnoseBench{
		Workers:   cfg.Workers,
		Cases:     len(labs),
		Rounds:    rounds,
		Identical: true,
	}

	// Correctness first: the two paths must agree on every case. Frames
	// are built (and cached) here, so the timed loops below are warm.
	frames := make([]*window.Frame, len(labs))
	for i, lab := range labs {
		frames[i] = lab.Collector.Frame()
		legacy := core.Diagnose(lab.Case, legacyQueries(lab), cfg)
		framed := core.DiagnoseFrame(lab.Case, frames[i], cfg)
		if !sameDiagnosis(legacy, framed) {
			out.Identical = false
		}
	}
	if !out.Identical {
		return out, fmt.Errorf("bench: frame and legacy diagnoses diverge")
	}

	legacySec, legacyAllocs, legacyBytes := measureLoop(rounds, labs, func(lab *cases.Labeled) {
		core.Diagnose(lab.Case, legacyQueries(lab), cfg)
	})
	frameSec, frameAllocs, frameBytes := measureLoop(rounds, labs, func(lab *cases.Labeled) {
		core.DiagnoseFrame(lab.Case, lab.Collector.Frame(), cfg)
	})

	ops := float64(rounds * len(labs))
	out.LegacyWindowsPerSec = ops / legacySec
	out.FrameWindowsPerSec = ops / frameSec
	out.Speedup = legacySec / frameSec
	out.LegacyAllocsPerOp = legacyAllocs
	out.FrameAllocsPerOp = frameAllocs
	if frameAllocs > 0 {
		out.AllocRatio = legacyAllocs / frameAllocs
	}
	out.LegacyBytesPerOp = legacyBytes
	out.FrameBytesPerOp = frameBytes
	if frameBytes > 0 {
		out.ByteRatio = legacyBytes / frameBytes
	}

	inc, err := runIncrementalBench(opt.Seed, opt.Small)
	out.Incremental = inc
	if err != nil {
		return out, err
	}
	return out, nil
}

// Format renders the benchmark report.
func (b *DiagnoseBench) Format() string {
	var s strings.Builder
	s.WriteString("Diagnosis path: columnar frame vs legacy map-keyed queries\n")
	fmt.Fprintf(&s, "corpus: %d cases × %d rounds, Workers=%d\n", b.Cases, b.Rounds, b.Workers)
	fmt.Fprintf(&s, "%-8s | %14s | %14s | %14s\n", "path", "windows/sec", "allocs/op", "bytes/op")
	fmt.Fprintf(&s, "%-8s | %14.1f | %14.0f | %14.0f\n", "legacy", b.LegacyWindowsPerSec, b.LegacyAllocsPerOp, b.LegacyBytesPerOp)
	fmt.Fprintf(&s, "%-8s | %14.1f | %14.0f | %14.0f\n", "frame", b.FrameWindowsPerSec, b.FrameAllocsPerOp, b.FrameBytesPerOp)
	fmt.Fprintf(&s, "speedup %.2fx, %.1fx fewer allocs, %.1fx fewer bytes, identical=%v\n",
		b.Speedup, b.AllocRatio, b.ByteRatio, b.Identical)
	if b.Incremental != nil {
		s.WriteString("\n")
		s.WriteString(b.Incremental.Format())
	}
	return s.String()
}
