package bench

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"pinsql/internal/fuzz"
)

// FuzzBenchOptions configures the adversarial-search benchmark.
type FuzzBenchOptions struct {
	Seed      int64
	Budget    int    // cases per search run; 0 → default (small: 8)
	Workers   int    // evaluation parallelism of the first run
	Small     bool   // CI-sized traces and budget
	CorpusDir string // when set, run A writes repro bundles here
}

// FuzzBench is the document behind BENCH_fuzz.json: one full search result
// plus the determinism cross-check — the same options re-run at a
// different worker count must reproduce the stable result byte-for-byte.
type FuzzBench struct {
	Result *fuzz.Result `json:"result"`

	// Deterministic reports the cross-check outcome; RunGenBench-style,
	// a failure is also returned as an error so the CLI exits non-zero.
	Deterministic bool   `json:"deterministic"`
	DigestA       string `json:"digest_a"`
	DigestB       string `json:"digest_b"`

	RunASec float64 `json:"run_a_sec"`
	RunBSec float64 `json:"run_b_sec"`
}

// fuzzOptions builds the search configuration.
func fuzzOptions(opt FuzzBenchOptions) fuzz.Options {
	o := fuzz.DefaultOptions()
	o.Seed = opt.Seed
	o.Workers = opt.Workers
	o.CorpusDir = opt.CorpusDir
	if opt.Small {
		o.Budget = 8
		o.TraceSec = 300
		o.HistoryDays = []int{1}
		o.MinimizeProbes = 4
		o.MaxRepros = 2
	}
	if opt.Budget > 0 {
		o.Budget = opt.Budget
	}
	return o
}

// RunFuzzBench runs the adversarial search twice — once as configured,
// once at a different worker count with bundle writing off — and requires
// the two stable results to be byte-identical. A divergence is a broken
// determinism contract and fails the benchmark.
func RunFuzzBench(opt FuzzBenchOptions) (*FuzzBench, error) {
	a := fuzzOptions(opt)

	start := time.Now()
	ra, err := fuzz.Run(a)
	if err != nil {
		return nil, err
	}
	aSec := time.Since(start).Seconds()

	b := a
	b.CorpusDir = ""
	b.Workers = a.Workers + 1

	start = time.Now()
	rb, err := fuzz.Run(b)
	if err != nil {
		return nil, err
	}
	bSec := time.Since(start).Seconds()

	ja, err := ra.StableJSON()
	if err != nil {
		return nil, err
	}
	jb, err := rb.StableJSON()
	if err != nil {
		return nil, err
	}

	res := &FuzzBench{
		Result:        ra,
		Deterministic: bytes.Equal(ja, jb),
		DigestA:       ra.Digest,
		DigestB:       rb.Digest,
		RunASec:       aSec,
		RunBSec:       bSec,
	}
	if !res.Deterministic {
		return nil, fmt.Errorf("bench: fuzz search diverged across worker counts (%d vs %d): digests %s vs %s",
			a.Workers, b.Workers, ra.Digest, rb.Digest)
	}
	return res, nil
}

// Format renders the report.
func (f *FuzzBench) Format() string {
	var b strings.Builder
	r := f.Result
	fmt.Fprintf(&b, "Adversarial workload search (seed %d, budget %d, trace %ds)\n",
		r.Seed, r.Budget, r.TraceSec)
	fmt.Fprintf(&b, "cases %d  misses %d  repros %d  deterministic=%v  (%.1fs + %.1fs cross-check)\n",
		r.Cases, r.Misses, len(r.Found), f.Deterministic, f.RunASec, f.RunBSec)
	fmt.Fprintf(&b, "digest %s\n", r.Digest)
	for _, k := range r.ByKind {
		fmt.Fprintf(&b, "  %-16s cases %2d  misses %2d  mean score %.3f\n", k.Kind, k.Cases, k.Misses, k.Mean)
	}
	for _, fd := range r.Found {
		fmt.Fprintf(&b, "  repro %s  arm %s  rank_of_truth %d  probes %d",
			fd.Name, fd.Arm, fd.Verdict.RankOfTruth, fd.Probes)
		if fd.Bundle != "" {
			fmt.Fprintf(&b, "  -> %s", fd.Bundle)
		}
		b.WriteString("\n")
	}
	// Arms with pulls, highest mean first lines would reorder by value —
	// keep the fixed grid order and skip unpulled arms instead.
	for _, a := range r.Arms {
		if a.Pulls == 0 {
			continue
		}
		fmt.Fprintf(&b, "  arm %-28s pulls %2d  mean %.3f  misses %d\n", a.Name, a.Pulls, a.Mean, a.Misses)
	}
	return b.String()
}
