package bench

import (
	"fmt"
	"strings"
	"time"

	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/rank"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/workload"
)

// ScenarioRow is one anomaly family's accuracy over a corpus. Precision and
// recall are micro-averaged over the family's cases: the ranked lists are
// treated as predicted sets against the labeled truth sets, complementing
// the rank-position metrics (H@k/MRR) of the Table I harness.
type ScenarioRow struct {
	Kind  string `json:"kind"`
	Cases int    `json:"cases"`

	// Detected is the anomaly detector's hit rate on the family.
	Detected float64 `json:"detected"`

	// R-SQL set accuracy: the diagnosis' ranked R-SQL list vs the injected
	// ground truth.
	RPrecision float64 `json:"r_precision"`
	RRecall    float64 `json:"r_recall"`

	// H-SQL set accuracy over the top-5 head (the list any DBA actually
	// reads) vs the session-lift ground truth.
	HPrecision float64 `json:"h_precision"`
	HRecall    float64 `json:"h_recall"`

	// Rank-position metrics on the R-SQL list, for cross-checking against
	// the Table I aggregate.
	H1  float64 `json:"h1"`
	H5  float64 `json:"h5"`
	MRR float64 `json:"mrr"`
}

// ScenarioAccuracy is the per-scenario accuracy table — the document
// behind the committed accuracy floor test.
type ScenarioAccuracy struct {
	Rows  []ScenarioRow `json:"rows"`
	Cases int           `json:"cases"`
	Sec   float64       `json:"sec"`
}

// Row returns the named family's row, or nil.
func (s *ScenarioAccuracy) Row(kind workload.AnomalyKind) *ScenarioRow {
	for i := range s.Rows {
		if s.Rows[i].Kind == kind.String() {
			return &s.Rows[i]
		}
	}
	return nil
}

// scenarioAgg accumulates one family's counts.
type scenarioAgg struct {
	cases    int
	detected int

	rTP, rPred, rTruth int
	hTP, hPred, hTruth int

	rankings [][]sqltemplate.ID
	truths   []map[sqltemplate.ID]bool
}

// setOverlap counts predictions, truth size, and their intersection.
func setOverlap(pred []sqltemplate.ID, truth map[sqltemplate.ID]bool) (tp, np, nt int) {
	for _, id := range pred {
		if truth[id] {
			tp++
		}
	}
	return tp, len(pred), len(truth)
}

// RunScenarioAccuracy diagnoses every case of the corpus through the frame
// pipeline and aggregates set-based accuracy per anomaly family.
func RunScenarioAccuracy(opt cases.Options) (*ScenarioAccuracy, error) {
	start := time.Now()
	cfg := core.DefaultConfig()
	cfg.Workers = 1

	aggs := map[workload.AnomalyKind]*scenarioAgg{}
	err := cases.Stream(opt, func(lab *cases.Labeled) error {
		a := aggs[lab.Kind]
		if a == nil {
			a = &scenarioAgg{}
			aggs[lab.Kind] = a
		}
		d := core.DiagnoseFrame(lab.Case, lab.Collector.Frame(), cfg)

		a.cases++
		if lab.Detected {
			a.detected++
		}
		rtp, rnp, rnt := setOverlap(d.RSQLIDs(), lab.RSQLs)
		a.rTP += rtp
		a.rPred += rnp
		a.rTruth += rnt

		h := d.HSQLIDs()
		if len(h) > 5 {
			h = h[:5]
		}
		htp, hnp, hnt := setOverlap(h, lab.HSQLs)
		a.hTP += htp
		a.hPred += hnp
		a.hTruth += hnt

		a.rankings = append(a.rankings, d.RSQLIDs())
		a.truths = append(a.truths, lab.RSQLs)
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &ScenarioAccuracy{}
	ratio := func(num, den int) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	for _, kind := range []workload.AnomalyKind{
		workload.KindBusinessSpike, workload.KindPoorSQL,
		workload.KindLockStorm, workload.KindMDL,
	} {
		a := aggs[kind]
		if a == nil {
			continue
		}
		ev := rank.Evaluate(a.rankings, a.truths)
		res.Rows = append(res.Rows, ScenarioRow{
			Kind:       kind.String(),
			Cases:      a.cases,
			Detected:   ratio(a.detected, a.cases),
			RPrecision: ratio(a.rTP, a.rPred),
			RRecall:    ratio(a.rTP, a.rTruth),
			HPrecision: ratio(a.hTP, a.hPred),
			HRecall:    ratio(a.hTP, a.hTruth),
			H1:         ev.H1,
			H5:         ev.H5,
			MRR:        ev.MRR,
		})
		res.Cases += a.cases
	}
	res.Sec = time.Since(start).Seconds()
	return res, nil
}

// Format renders the table.
func (s *ScenarioAccuracy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-scenario accuracy (%d cases, %.1fs)\n", s.Cases, s.Sec)
	fmt.Fprintf(&b, "%-16s %5s %8s | %7s %7s | %7s %7s | %5s %5s %5s\n",
		"kind", "cases", "detect", "R-prec", "R-rec", "H-prec", "H-rec", "H@1", "H@5", "MRR")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-16s %5d %7.0f%% | %7.3f %7.3f | %7.3f %7.3f | %5.2f %5.2f %5.2f\n",
			r.Kind, r.Cases, 100*r.Detected,
			r.RPrecision, r.RRecall, r.HPrecision, r.HRecall,
			r.H1, r.H5, r.MRR)
	}
	return b.String()
}
