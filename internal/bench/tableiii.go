package bench

import (
	"fmt"
	"strings"

	"pinsql/internal/cases"
	"pinsql/internal/session"
	"pinsql/internal/workload"
)

// TableIIIRow is one estimator's quality.
type TableIIIRow struct {
	Method string
	Corr   float64
	MSE    float64
}

// TableIII is the individual-active-session case study (§VIII-F): the sum
// of per-template estimates compared against the instance's SHOW STATUS
// active session, for the three estimators.
type TableIII struct {
	Rows    []TableIIIRow
	Buckets int
}

// RunTableIII simulates one busy instance and scores EstimateByRT,
// EstimateNoBuckets and EstimateBuckets against the observed active
// session. The trace uses a lock-storm case: blocked statements span many
// seconds, which is precisely the regime where charging a query's whole
// response time to its arrival second (Estimate By RT) falls apart — the
// paper's production traces have the same property.
func RunTableIII(seed int64, buckets int) (*TableIII, error) {
	if buckets <= 0 {
		buckets = session.DefaultBuckets
	}
	opt := cases.DefaultOptions()
	opt.Seed = seed
	opt.TraceSec = 1500
	opt.AnomalyStartSec = 800
	opt.AnomalyMinDurSec = 300
	opt.AnomalyMaxDurSec = 300
	opt.FillerServices = 2
	opt.FillerSpecs = 5
	opt.HistoryDays = []int{1}
	lab, err := cases.GenerateOne(opt, 0, workload.KindLockStorm)
	if err != nil {
		return nil, err
	}
	fr := lab.Collector.Frame()
	observed := fr.ActiveSession

	out := &TableIII{Buckets: buckets}
	byRT := session.EstimateFrameByRT(fr)
	c, m := byRT.Quality(observed)
	out.Rows = append(out.Rows, TableIIIRow{Method: "Estimate By RT", Corr: c, MSE: m})

	noBkt := session.EstimateFrameNoBuckets(fr)
	c, m = noBkt.Quality(observed)
	out.Rows = append(out.Rows, TableIIIRow{Method: "Estimate w/o buckets", Corr: c, MSE: m})

	bkt := session.EstimateFrameBuckets(fr, observed, buckets, 0)
	c, m = bkt.Quality(observed)
	out.Rows = append(out.Rows, TableIIIRow{Method: fmt.Sprintf("Estimate (K=%d)", buckets), Corr: c, MSE: m})
	return out, nil
}

// Format renders the table.
func (t *TableIII) Format() string {
	var b strings.Builder
	b.WriteString("Table III: estimated active session vs SHOW STATUS ground truth\n")
	fmt.Fprintf(&b, "%-22s | %18s | %12s\n", "Method", "Pearson Correlation", "MSE")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s | %18.2f | %12.2f\n", r.Method, r.Corr, r.MSE)
	}
	return b.String()
}
