package bench

import (
	"fmt"
	"strings"

	"pinsql/internal/cases"
	"pinsql/internal/core"
	"pinsql/internal/parallel"
	"pinsql/internal/timeseries"
	"pinsql/internal/workload"
)

// Fig7Point is one scalability measurement: the same case diagnosed on
// the sequential path (Workers=1) and on the parallel pipeline.
type Fig7Point struct {
	Templates int     // templates in the case
	PeriodSec int     // anomaly period length
	TimeSec   float64 // sequential diagnosis computing time, seconds
	ParSec    float64 // parallel diagnosis computing time, seconds
}

// Fig7 is the scalability study: computing time against template count and
// against anomaly-period length, with fitted polynomial curves, extended
// beyond the paper with the parallel pipeline's curve at Workers workers.
type Fig7 struct {
	Workers     int // worker count of the parallel curve
	ByTemplates []Fig7Point
	ByPeriod    []Fig7Point
	// TemplateFit / PeriodFit are degree-2 least-squares coefficients
	// (c0 + c1·x + c2·x²) of the sequential red-dot clouds, like the
	// paper's fitted black curves; ParTemplateFit / ParPeriodFit fit the
	// parallel clouds.
	TemplateFit    []float64
	PeriodFit      []float64
	ParTemplateFit []float64
	ParPeriodFit   []float64
}

// RunFig7 sweeps the number of SQL templates and the anomaly period length
// and measures the diagnosis computing time of each generated case, once
// sequentially and once with the parallel pipeline (workers <= 0 means
// GOMAXPROCS). Both runs produce identical diagnoses — the pipeline's
// determinism contract — so the curves differ only in wall-clock.
func RunFig7(seed int64, templateSweep []int, periodSweep []int, workers int) (*Fig7, error) {
	if len(templateSweep) == 0 {
		templateSweep = []int{500, 1000, 2000, 3000, 4500, 6000}
	}
	if len(periodSweep) == 0 {
		periodSweep = []int{600, 1200, 2400, 3600, 4800, 6000}
	}
	out := &Fig7{Workers: parallel.Resolve(workers)}

	measure := func(lab *cases.Labeled) Fig7Point {
		fr := lab.Collector.Frame()
		seqCfg := core.DefaultConfig()
		seqCfg.Workers = 1
		seq := core.DiagnoseFrame(lab.Case, fr, seqCfg)
		parCfg := core.DefaultConfig()
		parCfg.Workers = out.Workers
		par := core.DiagnoseFrame(lab.Case, fr, parCfg)
		return Fig7Point{
			Templates: len(lab.Case.Snapshot.Templates),
			PeriodSec: lab.Case.AE - lab.Case.AS,
			TimeSec:   seq.Time.Total().Seconds(),
			ParSec:    par.Time.Total().Seconds(),
		}
	}

	// Both sweeps fan case generation out over the worker pool (every
	// sweep point owns an independent seed) and measure in index order on
	// this goroutine, so the report is identical for any worker count.
	// Generation of later points overlaps measurement of earlier ones;
	// that can add scheduler noise to absolute times, but each case's seq
	// and par diagnoses — the ratio the figure is about — still run
	// back-to-back on this goroutine.

	// Sweep 1: templates (fixed moderate anomaly period).
	err := parallel.OrderedStream(workers, len(templateSweep),
		func(i int) (*cases.Labeled, error) {
			opt := cases.DefaultOptions()
			opt.Seed = seed + int64(i)
			opt.TraceSec = 2400
			opt.AnomalyStartSec = 1500
			opt.AnomalyMinDurSec = 300
			opt.AnomalyMaxDurSec = 300
			opt.HistoryDays = []int{1}
			// Filler templates to reach the requested cardinality; the
			// default world carries ~23 of its own.
			fill := templateSweep[i] - 23
			if fill < 0 {
				fill = 0
			}
			opt.FillerServices = fill / 25
			opt.FillerSpecs = 25
			return cases.GenerateOne(opt, int64(i), workload.KindBusinessSpike)
		},
		func(i int, lab *cases.Labeled) error {
			out.ByTemplates = append(out.ByTemplates, measure(lab))
			return nil
		})
	if err != nil {
		return nil, err
	}

	// Sweep 2: anomaly period length (fixed template count).
	err = parallel.OrderedStream(workers, len(periodSweep),
		func(i int) (*cases.Labeled, error) {
			period := periodSweep[i]
			opt := cases.DefaultOptions()
			opt.Seed = seed + 100 + int64(i)
			opt.TraceSec = period + 1900
			opt.AnomalyStartSec = 1800
			opt.AnomalyMinDurSec = period
			opt.AnomalyMaxDurSec = period
			opt.FillerServices = 6
			opt.FillerSpecs = 10
			opt.HistoryDays = []int{1}
			return cases.GenerateOne(opt, int64(i), workload.KindBusinessSpike)
		},
		func(i int, lab *cases.Labeled) error {
			out.ByPeriod = append(out.ByPeriod, measure(lab))
			return nil
		})
	if err != nil {
		return nil, err
	}

	seqTime := func(p Fig7Point) float64 { return p.TimeSec }
	parTime := func(p Fig7Point) float64 { return p.ParSec }
	byTemplates := func(p Fig7Point) float64 { return float64(p.Templates) }
	byPeriod := func(p Fig7Point) float64 { return float64(p.PeriodSec) }
	out.TemplateFit = fitPoints(out.ByTemplates, byTemplates, seqTime)
	out.PeriodFit = fitPoints(out.ByPeriod, byPeriod, seqTime)
	out.ParTemplateFit = fitPoints(out.ByTemplates, byTemplates, parTime)
	out.ParPeriodFit = fitPoints(out.ByPeriod, byPeriod, parTime)
	return out, nil
}

func fitPoints(pts []Fig7Point, xOf, yOf func(Fig7Point) float64) []float64 {
	if len(pts) < 3 {
		return nil
	}
	x := make(timeseries.Series, len(pts))
	y := make(timeseries.Series, len(pts))
	for i, p := range pts {
		x[i] = xOf(p)
		y[i] = yOf(p)
	}
	c, err := timeseries.PolyFit(x, y, 2)
	if err != nil {
		// Fall back to a linear fit when the sweep is too degenerate for
		// a quadratic (e.g. repeated x values).
		c, err = timeseries.PolyFit(x, y, 1)
		if err != nil {
			return nil
		}
	}
	return c
}

// Format renders both panels with the sequential and parallel curves.
func (f *Fig7) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7: scalability of PinSQL diagnosis (parallel curve at %d workers)\n", f.Workers)
	b.WriteString("(a) computing time vs number of templates (period fixed)\n")
	for _, p := range f.ByTemplates {
		fmt.Fprintf(&b, "  templates=%5d  seq=%.3fs  par=%.3fs\n", p.Templates, p.TimeSec, p.ParSec)
	}
	if f.TemplateFit != nil {
		fmt.Fprintf(&b, "  seq fit: t(n) = %.2e + %.2e·n + %.2e·n²\n",
			f.TemplateFit[0], f.TemplateFit[1], coefOr0(f.TemplateFit, 2))
	}
	if f.ParTemplateFit != nil {
		fmt.Fprintf(&b, "  par fit: t(n) = %.2e + %.2e·n + %.2e·n²\n",
			f.ParTemplateFit[0], f.ParTemplateFit[1], coefOr0(f.ParTemplateFit, 2))
	}
	b.WriteString("(b) computing time vs anomaly period length (templates fixed)\n")
	for _, p := range f.ByPeriod {
		fmt.Fprintf(&b, "  period=%5ds  seq=%.3fs  par=%.3fs\n", p.PeriodSec, p.TimeSec, p.ParSec)
	}
	if f.PeriodFit != nil {
		fmt.Fprintf(&b, "  seq fit: t(L) = %.2e + %.2e·L + %.2e·L²\n",
			f.PeriodFit[0], f.PeriodFit[1], coefOr0(f.PeriodFit, 2))
	}
	if f.ParPeriodFit != nil {
		fmt.Fprintf(&b, "  par fit: t(L) = %.2e + %.2e·L + %.2e·L²\n",
			f.ParPeriodFit[0], f.ParPeriodFit[1], coefOr0(f.ParPeriodFit, 2))
	}
	return b.String()
}

func coefOr0(c []float64, i int) float64 {
	if i < len(c) {
		return c[i]
	}
	return 0
}
