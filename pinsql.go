package pinsql

import (
	"fmt"
	"sort"

	"pinsql/internal/anomaly"
	"pinsql/internal/cases"
	"pinsql/internal/collect"
	"pinsql/internal/core"
	"pinsql/internal/dbsim"
	"pinsql/internal/rank"
	"pinsql/internal/repair"
	"pinsql/internal/session"
	"pinsql/internal/sqltemplate"
	"pinsql/internal/timeseries"
	"pinsql/internal/window"
	"pinsql/internal/workload"
)

// Re-exported types: the library's public vocabulary.
type (
	// Series is a fixed-interval time series (Definition II.1).
	Series = timeseries.Series
	// TemplateID identifies a SQL template (Definition II.3).
	TemplateID = sqltemplate.ID
	// Template is a normalized SQL statement with its digest.
	Template = sqltemplate.Template
	// Snapshot is one collection window: per-template series + metrics.
	Snapshot = collect.Snapshot
	// Frame is the columnar, index-keyed window representation every
	// diagnosis stage consumes (internal/window).
	Frame = window.Frame
	// Collector aggregates query logs and metrics (§IV-A).
	Collector = collect.Collector
	// Case is an anomaly case C = (M, Q, as, ae) (Definition II.2).
	Case = anomaly.Case
	// Phenomenon is a recognized anomalous phenomenon (§IV-B).
	Phenomenon = anomaly.Phenomenon
	// Config is the diagnosis pipeline configuration with the paper's
	// defaults and the Fig. 6 ablation switches.
	Config = core.Config
	// Diagnosis is the pipeline output: ranked H-SQLs and R-SQLs.
	Diagnosis = core.Diagnosis
	// Instance is the simulated cloud database instance.
	Instance = dbsim.Instance
	// InstanceConfig configures a simulated instance.
	InstanceConfig = dbsim.Config
	// World is a synthetic microservice workload with anomaly injectors.
	World = workload.World
	// Suggestion is one recommended repairing action (§VII).
	Suggestion = repair.Suggestion
	// RepairEnvironment wires repair actions to their actuators.
	RepairEnvironment = repair.Environment
	// RepairConfig is the Fig. 5-style rule set.
	RepairConfig = repair.Config
)

// NewTemplate normalizes a raw SQL statement into its template.
func NewTemplate(sql string) Template { return sqltemplate.New(sql) }

// DefaultConfig returns the paper's default pipeline parameters
// (δs = 30 min, K = 10, ks = 30, τ = 0.8, Kc = 5, τc = 0.95).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDemoWorld builds the standard synthetic workload used by the examples
// and the benchmark harness.
func NewDemoWorld(seed int64) *World { return workload.DefaultWorld(seed) }

// SimOptions configures Simulate.
type SimOptions struct {
	DurationSec int   // simulated window length; default 1800
	Seed        int64 // arrival randomness
	Cores       int   // instance cores; default 16
	Topic       string
}

// Run is a completed monitoring window over one simulated instance: the
// collector holds the aggregated data, Instance stays live for repair
// actions (throttling, autoscale) and re-runs.
type Run struct {
	World     *World
	Instance  *Instance
	Collector *Collector
	Snapshot  *Snapshot
	cfg       Config
}

// Simulate runs a world on a fresh simulated instance with the collection
// pipeline attached and returns the completed Run.
func Simulate(w *World, opt SimOptions) (*Run, error) {
	if opt.DurationSec <= 0 {
		opt.DurationSec = 1800
	}
	if opt.Topic == "" {
		opt.Topic = "demo-instance"
	}
	cfg := dbsim.DefaultConfig()
	if opt.Cores > 0 {
		cfg.Cores = opt.Cores
	}
	cfg.Seed = opt.Seed + 1
	inst := dbsim.NewInstance(cfg)
	w.Apply(inst)

	endMs := int64(opt.DurationSec) * 1000
	coll := collect.NewCollector(opt.Topic, 0, endMs, nil, nil)
	secs, err := inst.Run(dbsim.RunOptions{
		StartMs: 0,
		EndMs:   endMs,
		Source:  w.Source(0, endMs, opt.Seed+2),
		Sink:    coll.Sink(),
	})
	if err != nil {
		return nil, fmt.Errorf("pinsql: simulation failed: %w", err)
	}
	coll.IngestMetrics(secs)
	return &Run{
		World:     w,
		Instance:  inst,
		Collector: coll,
		Snapshot:  coll.Snapshot(),
		cfg:       DefaultConfig(),
	}, nil
}

// SetConfig overrides the diagnosis configuration for this run.
func (r *Run) SetConfig(cfg Config) { r.cfg = cfg }

// DetectCases runs the anomaly detector over the run's metrics with the
// production-default rules (active session, CPU usage, IOPS usage) and
// returns one Case per recognized phenomenon. Cases are ordered for
// triage: active-session phenomena first (the paper's headline metric,
// §II), then by duration.
func (r *Run) DetectCases() []*Case {
	det := anomaly.NewDetector(anomaly.Config{})
	metrics := map[string]Series{
		anomaly.MetricActiveSession: r.Snapshot.ActiveSession,
		anomaly.MetricCPUUsage:      r.Snapshot.CPUUsage,
		anomaly.MetricIOPSUsage:     r.Snapshot.IOPSUsage,
	}
	var out []*Case
	for _, p := range det.DetectPhenomena(metrics, anomaly.DefaultRules()) {
		out = append(out, anomaly.NewCase(r.Snapshot, p))
	}
	sort.SliceStable(out, func(i, j int) bool {
		si := out[i].Phenomenon.Rule == "active_session_anomaly"
		sj := out[j].Phenomenon.Rule == "active_session_anomaly"
		if si != sj {
			return si
		}
		return out[i].Phenomenon.Duration() > out[j].Phenomenon.Duration()
	})
	return out
}

// Queries extracts the raw per-query observations of the run window — the
// legacy map-keyed session-estimator input (flattened from the window
// frame; see Frame for the columnar form Diagnose itself consumes).
func (r *Run) Queries() session.Queries {
	return cases.QueriesOf(r.Collector, r.Snapshot)
}

// Frame returns the run window's columnar frame — per-template aggregates,
// observation columns and metric series in one immutable structure.
func (r *Run) Frame() *window.Frame {
	return r.Collector.Frame()
}

// Diagnose runs the full PinSQL pipeline on a detected case, through the
// index-first window frame (byte-identical to the legacy map-keyed path).
func (r *Run) Diagnose(c *Case) *Diagnosis {
	return core.DiagnoseFrame(c, r.Frame(), r.cfg)
}

// Repair suggests (and, when auto is true, executes against the run's
// instance and world) repairing actions for the diagnosis' top R-SQLs.
func (r *Run) Repair(c *Case, d *Diagnosis, auto bool) []Suggestion {
	mod := repair.New(repair.DefaultConfig(), repair.DefaultOptimizer())
	top := d.RSQLIDs()
	if len(top) > 3 {
		top = top[:3]
	}
	sugg := mod.Suggest(c, top)
	env := RepairEnvironment{
		Throttler: r.Instance,
		Scaler:    r.Instance,
		SpecOf: func(id TemplateID) repair.Optimizable {
			if spec := r.World.SpecByID(id); spec != nil {
				return spec
			}
			return nil
		},
		AutoExecute: auto,
	}
	return mod.Execute(env, sugg)
}

// TopSQL ranks the snapshot's templates over [as, ae) with one of the
// Table I baseline methods: "Top-RT", "Top-ER" or "Top-EN".
func TopSQL(snap *Snapshot, as, ae int, method string) ([]TemplateID, error) {
	switch rank.Method(method) {
	case rank.MethodTopRT, rank.MethodTopER, rank.MethodTopEN:
		return rank.TopSQL(snap, as, ae, rank.Method(method)), nil
	}
	return nil, fmt.Errorf("pinsql: unknown Top-SQL method %q", method)
}
