// Command gen regenerates the committed example slow log
// (examples/ingest/orders-slow.log.gz): an 8-minute recording of a small
// shop database — a few QPS of healthy point reads with a row-lock storm
// on `orders` in the middle, where a batch of long UPDATEs piles up and
// the active-session count spikes. Deterministic for a fixed -seed, so
// the committed fixture is reproducible byte for byte.
//
// Usage (from the repo root):
//
//	go run ./examples/ingest/gen -o examples/ingest/orders-slow.log.gz
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

const epoch = 1685613600 // 2023-06-01T10:00:00Z

type entry struct {
	emitMs int64
	text   string
}

func main() {
	out := flag.String("o", "examples/ingest/orders-slow.log.gz", "output path (gzip)")
	seed := flag.Int64("seed", 7, "generator seed")
	durSec := flag.Int("dur", 480, "trace length in seconds")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var entries []entry

	add := func(startMs int64, queryTime, lockTime float64, rowsExamined int64, sql string) {
		emit := startMs + int64(queryTime*1000)
		hdr := time.UnixMilli(emit).UTC().Format("2006-01-02T15:04:05.000000Z07:00")
		var b strings.Builder
		fmt.Fprintf(&b, "# Time: %s\n", hdr)
		fmt.Fprintf(&b, "# User@Host: shop[shop] @ app-%02d [10.1.0.%d]  Id: %5d\n", rng.Intn(4)+1, rng.Intn(200)+10, rng.Intn(9000)+100)
		fmt.Fprintf(&b, "# Query_time: %.6f  Lock_time: %.6f Rows_sent: %d  Rows_examined: %d\n",
			queryTime, lockTime, rng.Intn(20), rowsExamined)
		fmt.Fprintf(&b, "SET timestamp=%.3f;\n", float64(startMs)/1000)
		fmt.Fprintf(&b, "%s\n", sql)
		entries = append(entries, entry{emitMs: emit, text: b.String()})
	}

	baseline := []func() (string, float64, int64){
		func() (string, float64, int64) {
			return fmt.Sprintf("SELECT * FROM orders WHERE id = %d;", rng.Intn(90000)+1000), 0.05 + rng.Float64()*0.2, int64(rng.Intn(40) + 1)
		},
		func() (string, float64, int64) {
			return fmt.Sprintf("SELECT sku, qty FROM inventory WHERE warehouse_id = %d AND sku IN (%d, %d, %d);",
				rng.Intn(5)+1, rng.Intn(500), rng.Intn(500), rng.Intn(500)), 0.08 + rng.Float64()*0.3, int64(rng.Intn(900) + 50)
		},
		func() (string, float64, int64) {
			return fmt.Sprintf("SELECT c.name, o.total FROM orders o JOIN customers c ON c.id = o.customer_id WHERE o.id = %d;",
				rng.Intn(90000)+1000), 0.1 + rng.Float64()*0.4, int64(rng.Intn(300) + 10)
		},
		func() (string, float64, int64) {
			return fmt.Sprintf("INSERT INTO audit_log (actor, action, at) VALUES ('app', 'view:%d', NOW());", rng.Intn(1000)), 0.02 + rng.Float64()*0.1, 1
		},
	}

	// The last two seconds stay quiet so every statement finishes inside
	// the recording — no stragglers spilling into a fifth, empty window.
	for sec := 0; sec < *durSec-2; sec++ {
		tMs := int64(epoch+sec) * 1000
		// Healthy floor: 3–5 short statements per second.
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			mk := baseline[rng.Intn(len(baseline))]
			sql, qt, rows := mk()
			add(tMs+int64(rng.Intn(1000)), qt, rng.Float64()*0.002, rows, sql)
		}
		// The incident: between t=160 and t=200 a reporting batch holds
		// row locks on orders, and a pile of UPDATEs queues behind it.
		if sec >= 160 && sec < 200 && sec%2 == 0 {
			for i := 0; i < 3; i++ {
				qt := 4 + rng.Float64()*6
				lock := qt * (0.6 + rng.Float64()*0.35)
				add(tMs+int64(rng.Intn(1000)), qt, lock, int64(rng.Intn(2000)+100),
					fmt.Sprintf("UPDATE orders SET qty = qty - %d, updated_at = NOW() WHERE id = %d;", rng.Intn(3)+1, rng.Intn(50)+1))
			}
		}
		if sec == 160 {
			add(tMs, 55, 0.01, 4_800_000,
				"SELECT o.id, SUM(oi.qty * oi.price) FROM orders o JOIN order_items oi ON oi.order_id = o.id GROUP BY o.id ORDER BY 2 DESC;")
		}
	}

	// A slow log is written at statement completion: emission order.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].emitMs < entries[j].emitMs })

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	zw := gzip.NewWriter(f)
	fmt.Fprintf(zw, "/usr/sbin/mysqld, Version: 8.0.32 (MySQL Community Server - GPL). started with:\n")
	fmt.Fprintf(zw, "Tcp port: 3306  Unix socket: /var/run/mysqld/mysqld.sock\n")
	fmt.Fprintf(zw, "Time                 Id Command    Argument\n")
	for _, e := range entries {
		fmt.Fprint(zw, e.text)
	}
	if err := zw.Close(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d entries over %d seconds\n", *out, len(entries), *durSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}
