// Quickstart: simulate a cloud database instance with a lock-storm anomaly,
// detect it, and let PinSQL pinpoint the root cause statement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pinsql"
)

func main() {
	// 1. Build a synthetic microservice workload and inject an anomaly:
	//    a burst of hot-row UPDATEs over [600 s, 900 s) that will block
	//    the SELECTs reading the same orders rows.
	world := pinsql.NewDemoWorld(1)
	storm := world.InjectLockStorm(world.Services[2], "orders", 7, 600_000, 900_000)
	fmt.Printf("injected lock storm; true R-SQL templates: %v\n\n", storm.RSQLs)

	// 2. Simulate 1500 s of instance time with the collection pipeline
	//    attached.
	run, err := pinsql.Simulate(world, pinsql.SimOptions{DurationSec: 1500, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Detect anomalies on the collected performance metrics.
	detected := run.DetectCases()
	if len(detected) == 0 {
		log.Fatal("no anomaly detected — try another seed")
	}
	c := detected[0]
	fmt.Printf("detected %s over [%d s, %d s)\n\n", c.Phenomenon.Rule, c.AS, c.AE)

	// 4. Diagnose: estimate per-template sessions, rank H-SQLs, pinpoint
	//    R-SQLs.
	d := run.Diagnose(c)
	fmt.Println("top High-impact SQLs:")
	for i, s := range d.HSQLs {
		if i == 3 {
			break
		}
		fmt.Printf("  %d. %s  impact=%+.2f\n", i+1, s.ID, s.Impact)
	}
	fmt.Println("\ntop Root Cause SQLs:")
	for i, r := range d.RSQLs {
		if i == 3 {
			break
		}
		text := ""
		if ts := run.Snapshot.Template(r.ID); ts != nil {
			text = ts.Meta.Text
		}
		fmt.Printf("  %d. %s  score=%+.2f verified=%v\n     %s\n", i+1, r.ID, r.Score, r.Verified, text)
	}

	truth := map[pinsql.TemplateID]bool{}
	for _, id := range storm.RSQLs {
		truth[id] = true
	}
	if len(d.RSQLs) > 0 && truth[d.RSQLs[0].ID] {
		fmt.Println("\n✓ PinSQL pinpointed an injected root cause.")
	} else {
		fmt.Println("\n✗ top candidate differs from the injected root causes.")
	}

	// 5. Ask the repairing module what to do (suggestions only).
	for _, s := range run.Repair(c, d, false) {
		fmt.Printf("suggested action: %s on %s (%.1f)\n", s.Action, s.Template, s.Value)
	}
}
