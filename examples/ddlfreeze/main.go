// Metadata-lock scenario (§II category 3-i): a long ALTER TABLE takes the
// table's metadata lock; every statement touching the table piles up with
// "Waiting for table metadata lock", so the active session explodes while
// CPU stays idle — the signature that separates MDL incidents from CPU
// incidents.
//
//	go run ./examples/ddlfreeze
package main

import (
	"fmt"
	"log"

	"pinsql"
)

func main() {
	world := pinsql.NewDemoWorld(9)
	incident := world.InjectMDL("orders", 800_000, 120_000) // 2-minute DDL at t=800 s

	run, err := pinsql.Simulate(world, pinsql.SimOptions{DurationSec: 1400, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	detected := run.DetectCases()
	if len(detected) == 0 {
		log.Fatal("no anomaly detected")
	}
	c := detected[0]

	fmt.Printf("DDL: ALTER TABLE orders ... over [800 s, 920 s)\n")
	fmt.Printf("detected %s over [%d s, %d s)\n\n", c.Phenomenon.Rule, c.AS, c.AE)
	fmt.Printf("%-28s %10s %10s\n", "", "baseline", "freeze")
	fmt.Printf("%-28s %10.2f %10.2f\n", "active session (mean)",
		c.Snapshot.ActiveSession.Slice(0, 800).Mean(),
		c.Snapshot.ActiveSession.Slice(c.AS, c.AE).Mean())
	fmt.Printf("%-28s %10.1f %10.1f\n", "cpu usage %% (mean)",
		c.Snapshot.CPUUsage.Slice(0, 800).Mean(),
		c.Snapshot.CPUUsage.Slice(c.AS, c.AE).Mean())
	fmt.Printf("%-28s %10.0f %10.0f\n", "mdl waits (sum)",
		c.Snapshot.MDLWaits.Slice(0, 800).Sum(),
		c.Snapshot.MDLWaits.Slice(c.AS, c.AE).Sum())

	d := run.Diagnose(c)
	fmt.Println("\nHigh-impact SQLs (the frozen victims dominate):")
	for i, s := range d.HSQLs {
		if i == 4 {
			break
		}
		table := ""
		if ts := run.Snapshot.Template(s.ID); ts != nil {
			table = ts.Meta.Table
		}
		fmt.Printf("  %d. %s (table %s) impact=%+.2f\n", i+1, s.ID, table, s.Impact)
	}

	fmt.Println("\nRoot Cause SQL candidates:")
	hit := false
	for i, r := range d.RSQLs {
		if i == 4 {
			break
		}
		marker := "  "
		if r.ID == incident.RSQLs[0] {
			marker = "★ "
			hit = true
		}
		fmt.Printf("  %s%d. %s score=%+.2f\n", marker, i+1, r.ID, r.Score)
	}
	if hit {
		fmt.Println("\n★ the injected ALTER TABLE (MDL cases are the hardest family:")
		fmt.Println("  a single DDL execution leaves almost no #execution trend).")
	} else {
		fmt.Printf("\nthe DDL (%s) was not ranked — MDL incidents are the residual\n", incident.RSQLs[0])
		fmt.Println("failure mode the paper's 80% aggregate accuracy also contains.")
	}
}
