// Business-spike scenario (§II category 1): one microservice's traffic
// multiplies (a flash sale), lifting every SQL template of that business
// together — the co-spiking cluster structure the R-SQL module exploits.
// The right reaction is not throttling but AutoScale (§VII), since the
// traffic growth is legitimate.
//
//	go run ./examples/businessspike
package main

import (
	"fmt"
	"log"

	"pinsql"
)

func main() {
	world := pinsql.NewDemoWorld(21)
	storefront := world.Services[0]
	incident := world.InjectBusinessSpike(storefront, 25, 700_000, 1_000_000)

	run, err := pinsql.Simulate(world, pinsql.SimOptions{DurationSec: 1500, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	detected := run.DetectCases()
	if len(detected) == 0 {
		log.Fatal("no anomaly detected")
	}
	c := detected[0]
	fmt.Printf("flash sale on %q: anomaly [%d s, %d s)\n\n", storefront.Name, c.AS, c.AE)

	d := run.Diagnose(c)
	fmt.Println("R-SQL ranking (ground truth = the spiked business' heavy statements):")
	truth := map[pinsql.TemplateID]bool{}
	for _, id := range incident.RSQLs {
		truth[id] = true
	}
	for i, r := range d.RSQLs {
		if i == 5 {
			break
		}
		marker := "  "
		if truth[r.ID] {
			marker = "★ "
		}
		fmt.Printf("  %s%d. %s score=%+.2f verified=%v\n", marker, i+1, r.ID, r.Score, r.Verified)
	}

	// The whole spiked business clusters together: show the cluster that
	// contains the top candidate.
	if len(d.RSQLs) > 0 {
		cl := d.Root.Clusters[d.RSQLs[0].Cluster]
		fmt.Printf("\nthe top candidate's business cluster has %d templates:\n", len(cl))
		for _, id := range cl {
			if ts := run.Snapshot.Template(id); ts != nil {
				fmt.Printf("  - %s  %s\n", id, ts.Meta.Text)
			}
		}
	}

	// Known business growth → AutoScale rather than throttling.
	before := run.Instance.Cores()
	run.Instance.SetCores(before * 2)
	fmt.Printf("\nAutoScale: %d → %d cores (traffic growth was legitimate; throttling\n", before, run.Instance.Cores())
	fmt.Println("a flash sale would sabotage the business, §VII).")
}
