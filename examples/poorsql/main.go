// Poor-SQL scenario (§II category 2): a newly deployed statement with a
// pathological plan (huge examined-rows footprint) burns CPU and slows the
// whole instance. PinSQL pinpoints it, and the repairing module's query
// optimization (automatic index + rewrite) restores the metrics — the
// before/after gains mirror Table II.
//
//	go run ./examples/poorsql
package main

import (
	"fmt"
	"log"

	"pinsql"
)

func main() {
	world := pinsql.NewDemoWorld(5)
	incident := world.InjectPoorSQL(world.Services[4], "orders", 18, 700_000)

	run, err := pinsql.Simulate(world, pinsql.SimOptions{DurationSec: 1500, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	detected := run.DetectCases()
	if len(detected) == 0 {
		log.Fatal("no anomaly detected")
	}
	c := detected[0]
	fmt.Printf("anomaly window [%d s, %d s): CPU %.1f%% → %.1f%%\n\n",
		c.AS, c.AE,
		c.Snapshot.CPUUsage.Slice(0, c.AS).Mean(),
		c.Snapshot.CPUUsage.Slice(c.AS, c.AE).Mean())

	d := run.Diagnose(c)
	if len(d.RSQLs) == 0 {
		log.Fatal("no R-SQL pinpointed")
	}
	top := d.RSQLs[0]
	fmt.Printf("pinpointed R-SQL: %s (injected: %s)\n", top.ID, incident.RSQLs[0])
	before := run.Snapshot.Template(top.ID)
	fmt.Printf("  statement: %s\n", before.Meta.Text)
	fmt.Printf("  mean response time %.1f ms, mean examined rows %.0f\n\n", before.MeanRT(), before.MeanRows())

	// Execute the repair (throttle + query optimization) and replay the
	// same window to measure the gain.
	executed := run.Repair(c, d, true)
	for _, s := range executed {
		fmt.Printf("executed: %s on %s\n", s.Action, s.Template)
	}
	// Lift the diagnostic throttle so the optimization effect is measured
	// cleanly.
	run.Instance.ClearThrottle(string(top.ID))

	rerun, err := pinsql.Simulate(world, pinsql.SimOptions{DurationSec: 1500, Seed: 13, Topic: "after"})
	if err != nil {
		log.Fatal(err)
	}
	after := rerun.Snapshot.Template(top.ID)
	if after == nil {
		log.Fatal("optimized statement missing from replay")
	}
	fmt.Printf("\nafter optimization:\n")
	fmt.Printf("  mean response time %.1f ms (gain %.1f%%)\n",
		after.MeanRT(), 100*(before.MeanRT()-after.MeanRT())/before.MeanRT())
	fmt.Printf("  mean examined rows %.0f (gain %.1f%%)\n",
		after.MeanRows(), 100*(before.MeanRows()-after.MeanRows())/before.MeanRows())
	fmt.Printf("  instance CPU in the old anomaly window: %.1f%%\n",
		rerun.Snapshot.CPUUsage.Slice(c.AS, c.AE).Mean())
}
