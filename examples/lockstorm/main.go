// Lock-storm scenario (§I Challenge III, §II category 3-ii): a burst of
// UPDATEs takes exclusive row locks; SELECTs on the same rows pile up and
// become the visible High-impact SQLs, while the UPDATE is the true Root
// Cause SQL. Top-SQL-style rankings point at the victims; PinSQL finds the
// culprit.
//
//	go run ./examples/lockstorm
package main

import (
	"fmt"
	"log"

	"pinsql"
)

func main() {
	world := pinsql.NewDemoWorld(3)
	storm := world.InjectLockStorm(world.Services[2], "orders", 7, 700_000, 1_000_000)

	run, err := pinsql.Simulate(world, pinsql.SimOptions{DurationSec: 1600, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	detected := run.DetectCases()
	if len(detected) == 0 {
		log.Fatal("no anomaly detected")
	}
	c := detected[0]

	// How the lock storm looks on the instance metrics.
	base := c.Snapshot.ActiveSession.Slice(0, c.AS).Mean()
	storm1 := c.Snapshot.ActiveSession.Slice(c.AS, c.AE).Mean()
	waits := c.Snapshot.RowLockWaits.Slice(c.AS, c.AE).Sum()
	fmt.Printf("active session: %.1f → %.1f during the anomaly; %d row-lock waits\n\n",
		base, storm1, int(waits))

	// What a Top-SQL product would show the DBA.
	topRT, err := pinsql.TopSQL(c.Snapshot, c.AS, c.AE, "Top-RT")
	if err != nil {
		log.Fatal(err)
	}
	truth := map[pinsql.TemplateID]bool{}
	for _, id := range storm.RSQLs {
		truth[id] = true
	}
	fmt.Println("Top-RT ranking (what Performance-Insights-style tools show):")
	for i, id := range topRT[:3] {
		marker := "   "
		if truth[id] {
			marker = "★  "
		}
		fmt.Printf("  %s%d. %s  %s\n", marker, i+1, id, textOf(run, id))
	}

	// What PinSQL pinpoints.
	d := run.Diagnose(c)
	fmt.Println("\nPinSQL R-SQL ranking:")
	for i, r := range d.RSQLs {
		if i == 3 {
			break
		}
		marker := "   "
		if truth[r.ID] {
			marker = "★  "
		}
		fmt.Printf("  %s%d. %s  %s\n", marker, i+1, r.ID, textOf(run, r.ID))
	}
	fmt.Println("\n★ = the injected root causes (the job's hot-row writes)")

	if len(d.RSQLs) > 0 && truth[d.RSQLs[0].ID] {
		fmt.Println("PinSQL ranked a culprit first; Top-RT surfaced the blocked victim.")
	}
}

func textOf(run *pinsql.Run, id pinsql.TemplateID) string {
	if ts := run.Snapshot.Template(id); ts != nil {
		return ts.Meta.Text
	}
	return ""
}
