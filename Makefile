# PinSQL build/test/verification entry points. CI (.github/workflows/ci.yml)
# runs build + vet + test + race; fuzz-smoke is a short native-fuzzing slice
# over the SQL normalizer.

GO ?= go

.PHONY: all build test race vet fuzz-smoke fuzz-search test-corpus bench-parallel bench-logstore bench-gen bench-fleet bench-fleet-scale bench-diagnose bench-incremental bench-ingest smoke-serve clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite under the race detector; includes the broker concurrency
# suite (internal/collect/broker_race_test.go) and the Workers-equivalence
# property tests.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# Short fuzzing campaigns: sqltemplate.Normalize (panic-freedom,
# idempotence, stable template IDs), the segment store's record codec
# (round-trip, canonical re-encode, CRC corruption rejection), the
# repro-bundle parsers (manifest + case document, canonical re-encode and
# frame idempotence), and the slow-log ingestion parser (panic-freedom,
# UTF-8 validity, trace-codec round trip). Long campaigns: raise -fuzztime.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzNormalize -fuzztime=10s ./internal/sqltemplate
	$(GO) test -run=^$$ -fuzz=FuzzRecordCodec -fuzztime=10s ./internal/logstore/segment
	$(GO) test -run=^$$ -fuzz=FuzzFrameParser -fuzztime=5s ./internal/logstore/segment
	$(GO) test -run=^$$ -fuzz=FuzzReproBundle -fuzztime=5s ./internal/caseio
	$(GO) test -run=^$$ -fuzz=FuzzSlowLogParser -fuzztime=10s ./internal/ingest

# Adversarial workload search: a seed-driven bandit over injection
# parameters hunts diagnosis misranks, minimizes each miss, and writes
# repro bundles under fuzz-corpus/. Runs twice at different worker counts
# and exits non-zero if the trajectories diverge (determinism contract).
# Writes BENCH_fuzz.json. Widen the hunt: make fuzz-search FUZZ_BUDGET=64.
FUZZ_BUDGET ?= 0
fuzz-search:
	$(GO) run ./cmd/pinsql-bench -exp fuzz -small -seed 1 \
		-fuzz-budget $(FUZZ_BUDGET) -corpus-dir fuzz-corpus

# Replay every committed repro bundle through the diagnosis pipeline and
# assert the recorded verdicts byte-for-byte.
test-corpus:
	$(GO) test -run TestFuzzCorpusRegression -v ./internal/fuzz

# Parallel-pipeline speedup sweep (Workers in {1, 2, 4, NumCPU}) on a
# ~4000-template case.
bench-parallel:
	$(GO) test -run=^$$ -bench=BenchmarkDiagnoseParallel -benchtime=3x .

# Log-store backend comparison: append/scan throughput of the in-memory
# store versus the durable segment store, plus restart-recovery latency
# and disk footprint (with a cross-backend scan-equivalence check).
bench-logstore:
	$(GO) test -run=^$$ -bench=BenchmarkLogStoreBackends -benchtime=3x .

# Generation/collection fast path: parallel case generation vs sequential
# (exits non-zero if the parallel corpus is not byte-identical), dbsim
# event-loop allocs/event, and the intern-cache hit rate. Writes
# BENCH_gen.json.
bench-gen:
	$(GO) run ./cmd/pinsql-bench -exp gen -small -seed 3

# Fleet throughput sweep: instance counts × (shards × workers) through
# the full multi-instance monitoring pipeline (windows/sec, shard
# speedup, shed rate, peak queue depth), plus a multi-process re-run of
# one cell per instance count (each shard a supervised worker process),
# with a built-in determinism gate — the run exits non-zero if any
# cell's fleet report, in-process or multi-process, diverges from its
# instance count's unsharded baseline. Writes BENCH_fleet.json.
bench-fleet:
	$(GO) run ./cmd/pinsql-bench -exp fleet -small -seed 3

# The 128-instance scale gate alone (same sweep and divergence checks as
# bench-fleet at CI-sized parameters; kept as a named target so CI
# failures point at cross-shard/cross-mode determinism directly).
# Writes no file.
bench-fleet-scale:
	$(GO) run ./cmd/pinsql-bench -exp fleet -small -seed 5 -fleet-out ""

# Diagnosis-path comparison: the columnar window frame vs the legacy
# map-keyed path (windows/sec, allocs/op, bytes/op) with a built-in
# divergence check — the run exits non-zero if the two paths disagree on
# any ranking bit — plus the per-tick incremental-close comparison (delta
# frame build + streaming detection vs from-scratch rebuild + batch
# detection), which exits non-zero if any tick diverges or the close
# speedup drops below the committed floor. Writes BENCH_diagnose.json.
bench-diagnose:
	$(GO) run ./cmd/pinsql-bench -exp diagnose -small -seed 3

# The incremental-close gate alone (same floor and divergence checks as
# bench-diagnose, which embeds it; kept as a named target so CI failures
# point at the incremental path directly).
bench-incremental:
	$(GO) run ./cmd/pinsql-bench -exp diagnose -small -seed 5 -diagnose-out ""

# Trace-ingestion bench: parse throughput of the slow-log adapter stack
# on the committed example recording, plus the same trace through the
# full monitoring pipeline twice — exits non-zero if the two replays'
# reports differ on any byte. Writes BENCH_ingest.json.
bench-ingest:
	$(GO) run ./cmd/pinsql-bench -exp ingest

# Control-plane smoke, two phases: boot pinsqld -serve with a
# 4-instance 2-shard fleet, curl /fleet and /metrics, SIGTERM, assert a
# clean drain (exit 0); then the same fleet with -role coordinator
# (one worker process per shard), SIGKILL a worker, assert the
# supervisor respawns it, and assert the drain also stops the workers.
smoke-serve:
	./scripts/smoke_serve.sh

clean:
	$(GO) clean ./...
