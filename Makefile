# PinSQL build/test/verification entry points. CI (.github/workflows/ci.yml)
# runs build + vet + test + race; fuzz-smoke is a short native-fuzzing slice
# over the SQL normalizer.

GO ?= go

.PHONY: all build test race vet fuzz-smoke bench-parallel clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite under the race detector; includes the broker concurrency
# suite (internal/collect/broker_race_test.go) and the Workers-equivalence
# property tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzzing campaign over sqltemplate.Normalize (panic-freedom,
# idempotence, stable template IDs). Long campaigns: raise -fuzztime.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzNormalize -fuzztime=10s ./internal/sqltemplate

# Parallel-pipeline speedup sweep (Workers in {1, 2, 4, NumCPU}) on a
# ~4000-template case.
bench-parallel:
	$(GO) test -run=^$$ -bench=BenchmarkDiagnoseParallel -benchtime=3x .

clean:
	$(GO) clean ./...
