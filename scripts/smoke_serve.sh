#!/usr/bin/env bash
# Control-plane smoke test, two phases. Phase 1: boot pinsqld -serve over
# a 4-instance fleet split across 2 in-process shards, poll the
# aggregating HTTP endpoints while the fleet is running, then SIGTERM and
# assert a graceful parallel drain (exit 0). Phase 2: the same fleet in
# multi-process mode (-role coordinator, one worker process per shard) —
# assert the merged control plane, SIGKILL a worker and assert the
# supervisor respawns it, then SIGTERM and assert the drain also stops
# the workers. CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:19131
ADDR2=127.0.0.1:19132
DATA=$(mktemp -d)
DATA2=$(mktemp -d)
LOG=$(mktemp)
LOG2=$(mktemp)
trap 'kill "${PID:-}" "${PID2:-}" 2>/dev/null || true; rm -rf "$DATA" "$DATA2" "$LOG" "$LOG2" pinsqld-smoke' EXIT

# 6 workers over 4 instances in 2 shards (3 workers each): sim tasks
# strictly outrank diagnosis drains (the simulator is never paused), so
# each shard's spare worker keeps its commit stream flowing while the sim
# slots stay saturated.
go build -o pinsqld-smoke ./cmd/pinsqld
./pinsqld-smoke -instances 4 -windows 200 -window 300 -workers 6 -shards 2 \
  -data-dir "$DATA" -serve "$ADDR" >"$LOG" 2>&1 &
PID=$!

# Wait for the control plane to come up.
for i in $(seq 1 50); do
  curl -sf "http://$ADDR/fleet" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || { echo "pinsqld died early:"; cat "$LOG"; exit 1; }
  sleep 0.2
done

# Wait until the fleet has committed windows AND diagnosed anomalies
# (odd windows carry injections), then check every endpoint.
committed=0; anomalies=0
for i in $(seq 1 300); do
  fleet=$(curl -sf "http://$ADDR/fleet")
  committed=$(echo "$fleet" | sed -n 's/.*"committed": \([0-9]*\),.*/\1/p' | head -1)
  anomalies=$(echo "$fleet" | sed -n 's/.*"anomalies": \([0-9]*\),.*/\1/p' | head -1)
  [ "${committed:-0}" -gt 0 ] && [ "${anomalies:-0}" -gt 0 ] && break
  kill -0 "$PID" 2>/dev/null || { echo "pinsqld died mid-run:"; cat "$LOG"; exit 1; }
  sleep 0.2
done
[ "${committed:-0}" -gt 0 ] || { echo "fleet committed nothing"; cat "$LOG"; exit 1; }
[ "${anomalies:-0}" -gt 0 ] || { echo "fleet diagnosed no anomalies"; cat "$LOG"; exit 1; }
echo "fleet committed $committed windows, $anomalies anomalies"

FLEET=$(curl -sf "http://$ADDR/fleet")
echo "$FLEET" | grep -q '"id": "inst-00"' || { echo "/fleet missing inst-00: $FLEET"; exit 1; }
echo "$FLEET" | grep -q '"shards": 2' || { echo "/fleet missing shards=2: $FLEET"; exit 1; }
echo "$FLEET" | grep -q '"shard": ' || { echo "/fleet instances missing shard annotation: $FLEET"; exit 1; }
SHARDS=$(curl -sf "http://$ADDR/shards")
echo "$SHARDS" | grep -q '"shard": 0' || { echo "/shards missing shard 0: $SHARDS"; exit 1; }
echo "$SHARDS" | grep -q '"shard": 1' || { echo "/shards missing shard 1: $SHARDS"; exit 1; }
echo "$SHARDS" | grep -q '"commit_batches"' || { echo "/shards missing group-commit accounting: $SHARDS"; exit 1; }
curl -sf "http://$ADDR/instances/inst-00/diagnoses" | grep -q '"window": 0' \
  || { echo "/instances/inst-00/diagnoses missing window 0"; exit 1; }
curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/instances/nope/diagnoses" | grep -q 404 \
  || { echo "unknown instance did not 404"; exit 1; }

METRICS=$(curl -sf "http://$ADDR/metrics")
for metric in pinsql_fleet_windows_total pinsql_fleet_anomalies_total \
  pinsql_fleet_queue_depth pinsql_registry_raw_cache_misses_total \
  pinsql_broker_dropped_total pinsql_ingest_records_total \
  pinsql_ingest_parse_errors_total pinsql_ingest_lag_seconds \
  pinsql_shard_instances pinsql_shard_windows_total \
  pinsql_shard_queue_depth pinsql_shard_shed_windows_total \
  pinsql_shard_commit_batches_total pinsql_shard_commit_batch_windows_total; do
  echo "$METRICS" | grep -q "^$metric" || { echo "/metrics missing $metric"; exit 1; }
done
# Both shards must be scraping distinct series, and each shard's journal
# must have group-committed at least one batch by now.
echo "$METRICS" | grep -q '^pinsql_shard_instances{shard="0"} 2$' \
  || { echo "shard 0 not reporting 2 instances"; exit 1; }
echo "$METRICS" | grep -q '^pinsql_shard_instances{shard="1"} 2$' \
  || { echo "shard 1 not reporting 2 instances"; exit 1; }
echo "$METRICS" | grep '^pinsql_shard_commit_batches_total' | grep -qv ' 0$' \
  || { echo "no journal group commits recorded"; exit 1; }
# Every instance replays through the ingest seam (the simulator is just
# another Source), so its records counter must move with the fleet.
echo "$METRICS" | grep '^pinsql_ingest_records_total' | grep -qv ' 0$' \
  || { echo "ingest records counter stuck at zero"; exit 1; }
# Every fleet series now carries the owning shard's label (inst-00 hashes
# to shard 0 at K=2; labels render sorted by key).
echo "$METRICS" | grep -q '^pinsql_ingest_parse_errors_total{instance="inst-00",shard="0"} 0$' \
  || { echo "simulator instance reported parse errors (or shard label missing)"; exit 1; }
# Window and anomaly counters must be live (non-zero) while the fleet runs.
echo "$METRICS" | grep '^pinsql_fleet_windows_total' | grep -qv ' 0$' \
  || { echo "windows counter stuck at zero"; exit 1; }
echo "$METRICS" | grep '^pinsql_fleet_anomalies_total' | grep -qv ' 0$' \
  || { echo "anomalies counter stuck at zero"; exit 1; }
curl -sf "http://$ADDR/debug/pprof/cmdline" >/dev/null || { echo "pprof not wired"; exit 1; }

# Graceful drain: SIGTERM must commit the queued windows and exit 0.
kill -TERM "$PID"
for i in $(seq 1 450); do kill -0 "$PID" 2>/dev/null || break; sleep 0.2; done
if kill -0 "$PID" 2>/dev/null; then echo "pinsqld ignored SIGTERM"; cat "$LOG"; exit 1; fi
wait "$PID" || { echo "pinsqld exited non-zero on SIGTERM:"; cat "$LOG"; exit 1; }
grep -q "draining fleet" "$LOG" || { echo "no drain message:"; cat "$LOG"; exit 1; }
grep -q "^instance inst-00:" "$LOG" || { echo "no final report:"; cat "$LOG"; exit 1; }
echo "smoke-serve OK: clean drain after $(grep -c 'window' "$LOG") log lines"

# ---- Phase 2: multi-process mode -------------------------------------
# Same fleet shape, but every shard is a supervised worker process behind
# the versioned worker API; the parent is a pure fan-out control plane.
./pinsqld-smoke -instances 4 -windows 200 -window 300 -workers 6 -shards 2 \
  -role coordinator -data-dir "$DATA2" -serve "$ADDR2" >"$LOG2" 2>&1 &
PID2=$!

for i in $(seq 1 150); do
  curl -sf "http://$ADDR2/fleet" >/dev/null 2>&1 && break
  kill -0 "$PID2" 2>/dev/null || { echo "coordinator died early:"; cat "$LOG2"; exit 1; }
  sleep 0.2
done

FLEET=$(curl -sf "http://$ADDR2/fleet")
echo "$FLEET" | grep -q '"shards": 2' || { echo "coordinator /fleet missing shards=2: $FLEET"; exit 1; }
echo "$FLEET" | grep -q '"id": "inst-00"' || { echo "coordinator /fleet missing inst-00: $FLEET"; exit 1; }
SHARDS=$(curl -sf "http://$ADDR2/shards")
echo "$SHARDS" | grep -q '"up": true' || { echo "/shards reports no live worker: $SHARDS"; exit 1; }

# The worker publishes host:port + pid next to the SHARDS file; that is
# the supervisor's (and our) handle on the process.
for i in $(seq 1 50); do
  [ -s "$DATA2/worker-0.addr" ] && [ -s "$DATA2/worker-1.addr" ] && break
  sleep 0.2
done
WPID0=$(sed -n 2p "$DATA2/worker-0.addr")
kill -0 "$WPID0" 2>/dev/null || { echo "worker 0 (pid $WPID0) not running"; exit 1; }

# The merged /metrics exposition must carry the coordinator's supervision
# gauges AND the worker-scraped fleet series under their shard labels.
METRICS=$(curl -sf "http://$ADDR2/metrics")
echo "$METRICS" | grep -q '^pinsql_shard_up{shard="0"} 1$' \
  || { echo "coordinator /metrics missing pinsql_shard_up for shard 0"; exit 1; }
echo "$METRICS" | grep -q '^pinsql_shard_up{shard="1"} 1$' \
  || { echo "coordinator /metrics missing pinsql_shard_up for shard 1"; exit 1; }
echo "$METRICS" | grep -q '^pinsql_fleet_windows_total{instance="inst-00",shard="0"}' \
  || { echo "worker fleet series not merged into coordinator /metrics"; exit 1; }
[ "$(echo "$METRICS" | grep -c '^# TYPE pinsql_fleet_windows_total ')" = 1 ] \
  || { echo "merged /metrics repeats the pinsql_fleet_windows_total header"; exit 1; }

# SIGKILL worker 0: the supervisor must relaunch it (new pid in the addr
# file) and the worker must resume from its shard journal — the control
# plane keeps answering throughout.
kill -KILL "$WPID0"
for i in $(seq 1 150); do
  NEWPID=$(sed -n 2p "$DATA2/worker-0.addr" 2>/dev/null || true)
  [ -n "${NEWPID:-}" ] && [ "$NEWPID" != "$WPID0" ] && kill -0 "$NEWPID" 2>/dev/null && break
  sleep 0.2
done
[ -n "${NEWPID:-}" ] && [ "$NEWPID" != "$WPID0" ] || { echo "worker 0 was not respawned after SIGKILL"; cat "$LOG2"; exit 1; }
curl -sf "http://$ADDR2/fleet" | grep -q '"id": "inst-00"' \
  || { echo "/fleet unavailable after worker respawn"; exit 1; }
for i in $(seq 1 150); do
  curl -sf "http://$ADDR2/shards" | grep -q '"error"' || break
  sleep 0.2
done
echo "worker 0 respawned as pid $NEWPID after SIGKILL"

# Graceful drain: SIGTERM must drain both workers, print the aggregated
# report, ask the workers to exit, and leave no processes behind.
WPID1=$(sed -n 2p "$DATA2/worker-1.addr")
kill -TERM "$PID2"
for i in $(seq 1 450); do kill -0 "$PID2" 2>/dev/null || break; sleep 0.2; done
if kill -0 "$PID2" 2>/dev/null; then echo "coordinator ignored SIGTERM"; cat "$LOG2"; exit 1; fi
wait "$PID2" || { echo "coordinator exited non-zero on SIGTERM:"; cat "$LOG2"; exit 1; }
grep -q "draining fleet" "$LOG2" || { echo "no coordinator drain message:"; cat "$LOG2"; exit 1; }
grep -q "^instance inst-00:" "$LOG2" || { echo "no coordinator final report:"; cat "$LOG2"; exit 1; }
for i in $(seq 1 50); do
  ! kill -0 "$NEWPID" 2>/dev/null && ! kill -0 "$WPID1" 2>/dev/null && break
  sleep 0.2
done
kill -0 "$NEWPID" 2>/dev/null && { echo "worker 0 (pid $NEWPID) survived coordinator shutdown"; exit 1; }
kill -0 "$WPID1" 2>/dev/null && { echo "worker 1 (pid $WPID1) survived coordinator shutdown"; exit 1; }
echo "smoke-serve OK: multi-process drain clean, workers exited"
