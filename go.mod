module pinsql

go 1.24
